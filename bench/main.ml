(* Benchmark harness and experiment regeneration.

   Running this executable regenerates every table and figure of the
   paper's evaluation:

   - Table 1: component automation summary (static plan metadata).
   - Table 2: gadget inventory, the 585-test-case corpus, and measured
     per-phase timing (Bechamel micro-benchmarks of the gadget
     constructor, the checker and a full test-case execution).
   - Table 3: the full campaign on BOOM and XiangShan, compared with the
     paper's per-core verdicts.
   - Table 4: the mitigation matrix, re-running a corpus slice under each
     countermeasure on both cores.
   - Figures 2-7: the case-study scenarios with their measured
     observations (prefetcher abuse, PTW hijack, destroy residue, the
     fake-hit timing gap, the HPC interrupt window, uBTB aliasing).

   Absolute times differ from the paper (their substrate was Verilator
   RTL simulation; ours is a behavioural model), but the shape of every
   result — which cases are found on which core, which mitigations help —
   is compared row by row. *)

open Bechamel
open Toolkit

let boom = Uarch.Config.boom
let xiangshan = Uarch.Config.xiangshan

(* Campaign phases fan out across domains; override with TEESEC_JOBS
   (results are deterministic for every value). *)
let jobs =
  match Sys.getenv_opt "TEESEC_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg "TEESEC_JOBS must be a positive integer")
  | None -> Parallel.Pool.default_jobs ()

(* All wall-clock measurement goes through one active observability
   sink: phase timings land in the
   [teesec_bench_phase_duration_seconds{phase=...}] histogram (and the
   sink's tracer), and the campaign/inject/fuzz pipelines run with the
   same sink so their internal spans and counters are exercised by
   every harness run. *)
let obs = Obs.create ()

let timed_phase name f =
  let histogram =
    Option.map
      (fun m ->
        Obs.Metrics.histogram m
          ~labels:[ ("phase", name) ]
          ~help:"Wall time of one evaluation-harness phase."
          "teesec_bench_phase_duration_seconds")
      (Obs.metrics obs)
  in
  Obs.timed obs ?histogram name f

(* {1 Bechamel benches} *)

let bench_gadget_constructor =
  Test.make ~name:"table2/gadget-constructor"
    (Staged.stage (fun () ->
         ignore
           (Teesec.Assembler.assemble ~id:0 Teesec.Access_path.Exp_acc_enc_l1
              ~params:Teesec.Params.default)))

(* The checker bench analyses a representative prepared log. *)
let prepared_outcome =
  lazy
    (let tc =
       Teesec.Assembler.assemble ~id:0 Teesec.Access_path.Exp_acc_enc_l1
         ~params:Teesec.Params.default
     in
     Teesec.Runner.run boom tc)

let bench_checker =
  Test.make ~name:"table2/checker"
    (Staged.stage (fun () ->
         let outcome = Lazy.force prepared_outcome in
         ignore
           (Teesec.Checker.check outcome.Teesec.Runner.log
              outcome.Teesec.Runner.tracker)))

let bench_testcase config name =
  Test.make ~name
    (Staged.stage (fun () ->
         let tc =
           Teesec.Assembler.assemble ~id:0 Teesec.Access_path.Exp_acc_enc_l1
             ~params:Teesec.Params.default
         in
         let outcome = Teesec.Runner.run config tc in
         ignore
           (Teesec.Checker.check outcome.Teesec.Runner.log
              outcome.Teesec.Runner.tracker)))

let bench_faulting_load config name ~in_l1 =
  Test.make ~name
    (Staged.stage (fun () ->
         let env = Teesec.Env.create config Teesec.Params.default in
         Teesec.Gadget_library.create_enclave.Teesec.Gadget.emit env;
         Teesec.Gadget_library.fill_enc_mem.Teesec.Gadget.emit env;
         if not in_l1 then Teesec.Gadget_library.evict_enc_l1.Teesec.Gadget.emit env;
         ignore
           (Uarch.Machine.load env.Teesec.Env.machine
              ~vaddr:(Teesec.Env.secret_addr env) ~size:8 ())))

let bench_binary_assembler =
  Test.make ~name:"encode/assemble-quickstart-attack"
    (Staged.stage (fun () ->
         let prog =
           Riscv.Program.of_instrs ~base:0x8000_0000L
             [
               Riscv.Instr.Li (Riscv.Instr.a4, 0x8800_8000L);
               Riscv.Instr.ld Riscv.Instr.a5 Riscv.Instr.a4 0L;
               Riscv.Instr.Halt;
             ]
         in
         ignore (Riscv.Encode.assemble prog)))

let benches =
  [
    bench_gadget_constructor;
    bench_binary_assembler;
    bench_checker;
    bench_testcase boom "table3/test-case-boom";
    bench_testcase xiangshan "table3/test-case-xiangshan";
    bench_faulting_load xiangshan "figure5/faulting-load-secret-in-l1" ~in_l1:true;
    bench_faulting_load xiangshan "figure5/faulting-load-secret-evicted" ~in_l1:false;
  ]

(* Run one bench and return the OLS estimates of nanoseconds per run. *)
let measure_bench test =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = [ Instance.monotonic_clock ] in
  let analyze = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Benchmark.all cfg instances test in
  let ols = Analyze.all analyze Instance.monotonic_clock results in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (estimate :: _) -> (name, estimate) :: acc
      | _ -> acc)
    ols []

let run_benches () =
  Format.printf "== Bechamel micro-benchmarks (ns/run) ==@.";
  let results =
    List.concat_map
      (fun test -> measure_bench (Test.make_grouped ~name:"" [ test ]))
      benches
  in
  let results = List.sort compare results in
  List.iter
    (fun (name, ns) ->
      Format.printf "  %-44s %14.1f ns/run (%.3f ms)@." name ns (ns /. 1e6))
    results;
  Format.printf "@.";
  results

let find_ns results fragment =
  List.fold_left
    (fun acc (name, ns) ->
      if Teesec.Strutil.contains_substring ~needle:fragment name then Some ns
      else acc)
    None results

(* {1 Machine-readable campaign record}

   BENCH_campaign.json tracks the perf trajectory across PRs: corpus
   size, per-core wall time, simulated cycles, log records, and the job
   count the campaign ran with.  The campaign result itself carries no
   timing (reports must be byte-identical across job counts and
   observability), so the wall clock comes from the harness's own
   [timed_phase] wrapper. *)

let write_campaign_json ~path results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"hardware_threads\": %d,\n"
    (Parallel.Pool.default_jobs ());
  Printf.bprintf buf "  \"corpus_size\": %d,\n" (Teesec.Fuzzer.total_cases ());
  Buffer.add_string buf "  \"campaigns\": [\n";
  List.iteri
    (fun i ((r : Teesec.Campaign.result), wall_time_s) ->
      Printf.bprintf buf
        "    {\"core\": \"%s\", \"testcases\": %d, \"wall_time_s\": %.3f, \
         \"cases_per_s\": %.1f, \
         \"total_cycles\": %d, \"total_log_records\": %d, \
         \"residue_warnings\": %d, \"found\": [%s], \"matches_paper\": %b}%s\n"
        (String.lowercase_ascii
           (Uarch.Config.core_kind_to_string r.Teesec.Campaign.config.Uarch.Config.kind))
        r.Teesec.Campaign.total_cases wall_time_s
        (float_of_int r.Teesec.Campaign.total_cases /. wall_time_s)
        r.Teesec.Campaign.total_cycles r.Teesec.Campaign.total_log_records
        r.Teesec.Campaign.residue_warnings
        (String.concat ", "
           (List.map
              (fun c -> Printf.sprintf "\"%s\"" (Teesec.Case.to_string c))
              r.Teesec.Campaign.found))
        (Teesec.Campaign.matches_paper r)
        (if i < List.length results - 1 then "," else ""))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Machine-readable injection record}

   BENCH_inject.json tracks the fault-injection campaign: wall time and
   faulted-runs-per-second for a small plan batch per core, plus the
   robustness classification.  The campaign result itself contains no
   timing (reports must be byte-identical across job counts), so the
   wall clock is wrapped around the call here. *)

let write_inject_json ~path results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Buffer.add_string buf "  \"campaigns\": [\n";
  List.iteri
    (fun i ((r : Inject.Inject_campaign.result), wall_time_s) ->
      let plans = List.length r.Inject.Inject_campaign.plan_results in
      let units = plans * r.Inject.Inject_campaign.testcases in
      Printf.bprintf buf
        "    {\"core\": \"%s\", \"seed\": \"%s\", \"plans\": %d, \
         \"testcases\": %d, \"faulted_runs\": %d, \"wall_time_s\": %.3f, \
         \"cases_per_s\": %.1f, \"plan_totals\": {\"stable\": %d, \
         \"spurious\": %d, \"masked\": %d}, \"baseline_matches_paper\": %b}%s\n"
        (String.lowercase_ascii
           (Uarch.Config.core_kind_to_string
              r.Inject.Inject_campaign.config.Uarch.Config.kind))
        (Riscv.Word.to_hex r.Inject.Inject_campaign.seed)
        plans r.Inject.Inject_campaign.testcases units wall_time_s
        (float_of_int units /. wall_time_s)
        r.Inject.Inject_campaign.plan_totals.Inject.Inject_campaign.stable
        r.Inject.Inject_campaign.plan_totals.Inject.Inject_campaign.spurious
        r.Inject.Inject_campaign.plan_totals.Inject.Inject_campaign.masked
        r.Inject.Inject_campaign.baseline_matches_paper
        (if i < List.length results - 1 then "," else ""))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Machine-readable snapshot/fork record}

   BENCH_snapshot.json measures the snapshot/fork execution engine
   (Teesec.Snapshot) against the replay-everything oracle on the same
   workloads.  Both paths produce byte-identical reports — the
   differential suites pin campaign CSV, inject JSON and fuzz JSON
   across them — so this record tracks only throughput.

   Each phase runs [snapshot_reps] repetitions per path and reports the
   median; a phase's repetitions share one engine, so the median
   reflects the steady-state (warm-cache) cost while [snapshot_cold_s]
   keeps the first, cache-building repetition honest.  The setup-bound
   phases exclude the Imp_Acc_Destroy_Memset family: its cost is the
   measured destroy-residue behaviour itself (the access gadget and the
   checker, not enclave setup), which no amount of prefix sharing can
   remove and which therefore Amdahl-bounds the full-workload ratios
   reported alongside. *)

type snapshot_phase = {
  sp_name : string;
  sp_units : int;  (** Executions evaluated per repetition. *)
  sp_replay_s : float;  (** Median over repetitions. *)
  sp_snap_cold_s : float;  (** First repetition: cache still filling. *)
  sp_snap_s : float;  (** Median over repetitions (warm-inclusive). *)
  sp_stats : Teesec.Snapshot.stats;  (** Cumulative over repetitions. *)
}

let snapshot_reps = 3

let median l =
  List.nth (List.sort compare l) (List.length l / 2)

let run_snapshot_phase ~name ~units ~replay ~snap =
  let runs f =
    let acc = ref [] in
    for _ = 1 to snapshot_reps do
      Gc.compact ();
      acc := snd (timed_phase ("snapshot/" ^ name) f) :: !acc
    done;
    List.rev !acc
  in
  let replay_times = runs replay in
  let engine = Teesec.Snapshot.create ~obs boom in
  let snap_times = runs (fun () -> snap engine) in
  {
    sp_name = name;
    sp_units = units;
    sp_replay_s = median replay_times;
    sp_snap_cold_s = List.hd snap_times;
    sp_snap_s = median snap_times;
    sp_stats = Teesec.Snapshot.stats engine;
  }

let setup_bound_only tcs =
  List.filter
    (fun tc ->
      (Teesec.Testcase.access_gadget tc).Teesec.Gadget.name
      <> "Imp_Acc_Destroy_Memset")
    tcs

let run_snapshot_phases () =
  let slice = Teesec.Mitigation_eval.slice () in
  let corpus = Teesec.Fuzzer.corpus () in
  (* The inner runs deliberately use the noop sink (the CLI default):
     active-sink instrumentation adds a uniform per-case cost to both
     paths, which would understate the engine's ratio. *)
  let inject tcs ?snapshots () =
    ignore
      (Inject.Inject_campaign.run ~jobs ?snapshots ~seed:0x5EEDL ~plans:20
         boom tcs)
  in
  let campaign tcs ?snapshots () =
    ignore (Teesec.Campaign.run ~jobs ?snapshots boom tcs)
  in
  (* The full-corpus campaign goes first: a user's campaign runs in a
     fresh process, and the replay baseline measurably speeds up once a
     few workloads have already grown and warmed the heap — measuring
     it at process start keeps the baseline honest.  The later phases'
     ratios are far from 1, so warm-heap skew cannot change their
     story. *)
  let phases =
    [
      (run_snapshot_phase ~name:"campaign-full"
         ~units:(List.length corpus)
         ~replay:(campaign corpus ?snapshots:None)
         ~snap:(fun e -> campaign corpus ~snapshots:e ()));
      (let tcs = setup_bound_only corpus in
       run_snapshot_phase ~name:"campaign-setup-bound"
         ~units:(List.length tcs)
         ~replay:(campaign tcs ?snapshots:None)
         ~snap:(fun e -> campaign tcs ~snapshots:e ()));
      (* (plan x case) units per repetition: the snapshot path proves
         most of them equal the clean baseline (span pruning) instead
         of executing them — that is the throughput being measured. *)
      (let tcs = setup_bound_only slice in
       run_snapshot_phase ~name:"inject-setup-bound"
         ~units:(20 * List.length tcs)
         ~replay:(inject tcs ?snapshots:None)
         ~snap:(fun e -> inject tcs ~snapshots:e ()));
      (run_snapshot_phase ~name:"inject-full-slice"
         ~units:(20 * List.length slice)
         ~replay:(inject slice ?snapshots:None)
         ~snap:(fun e -> inject slice ~snapshots:e ()));
    ]
  in
  List.iter
    (fun p ->
      Format.printf
        "  %-22s %6d units: replay %6.0f/s, snapshot %6.0f/s (%.2fx; cold \
         %.2fx); %d hits / %d misses@."
        p.sp_name p.sp_units
        (float_of_int p.sp_units /. p.sp_replay_s)
        (float_of_int p.sp_units /. p.sp_snap_s)
        (p.sp_replay_s /. p.sp_snap_s)
        (p.sp_replay_s /. p.sp_snap_cold_s)
        p.sp_stats.Teesec.Snapshot.hits p.sp_stats.Teesec.Snapshot.misses)
    phases;
  phases

let write_snapshot_json ~path phases =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"reps\": %d,\n" snapshot_reps;
  Buffer.add_string buf "  \"phases\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf buf
        "    {\"phase\": \"%s\", \"core\": \"boom\", \"units\": %d, \
         \"replay_s\": %.3f, \"replay_units_per_s\": %.1f, \
         \"snapshot_cold_s\": %.3f, \"snapshot_s\": %.3f, \
         \"snapshot_units_per_s\": %.1f, \"speedup\": %.2f, \
         \"snapshot\": {\"hits\": %d, \"misses\": %d, \"stores\": %d, \
         \"restored_gadgets\": %d, \"replayed_gadgets\": %d}}%s\n"
        p.sp_name p.sp_units p.sp_replay_s
        (float_of_int p.sp_units /. p.sp_replay_s)
        p.sp_snap_cold_s p.sp_snap_s
        (float_of_int p.sp_units /. p.sp_snap_s)
        (p.sp_replay_s /. p.sp_snap_s)
        p.sp_stats.Teesec.Snapshot.hits p.sp_stats.Teesec.Snapshot.misses
        p.sp_stats.Teesec.Snapshot.stores
        p.sp_stats.Teesec.Snapshot.restored_gadgets
        p.sp_stats.Teesec.Snapshot.replayed_gadgets
        (if i < List.length phases - 1 then "," else ""))
    phases;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Machine-readable wave-tap record}

   BENCH_wave.json measures what the microarchitectural event taps
   (lib/wave) cost: the corpus-slice campaign with taps off vs on, at
   equal jobs, reps and median as the snapshot record.  The tap is a
   one-branch check on the hot path when off and a buffer append when
   on, so the interesting numbers are the overhead ratio and the stream
   volume a slice campaign produces.  Verdict artifacts are pinned
   byte-identical across the two paths by the differential suites, so
   only throughput and volume are recorded here. *)

type wave_phase = {
  wv_name : string;
  wv_units : int;  (** Test cases evaluated per repetition. *)
  wv_off_s : float;  (** Median over repetitions, taps off. *)
  wv_on_s : float;  (** Median over repetitions, taps on. *)
  wv_stream_bytes : int;  (** Total encoded stream size, one repetition. *)
  wv_events : int;  (** Total decoded events, one repetition. *)
}

let wave_reps = 3

let run_wave_phase () =
  let slice = Teesec.Mitigation_eval.slice () in
  let runs f =
    let acc = ref [] in
    for _ = 1 to wave_reps do
      Gc.compact ();
      acc := snd (timed_phase "wave/campaign-slice" f) :: !acc
    done;
    List.rev !acc
  in
  let off_times =
    runs (fun () -> ignore (Teesec.Campaign.run ~jobs boom slice))
  in
  let waves = ref [] in
  let on_times =
    runs (fun () ->
        let r = Teesec.Campaign.run ~jobs ~wave:true boom slice in
        waves := r.Teesec.Campaign.waves)
  in
  let stream_bytes =
    List.fold_left (fun acc (_, s) -> acc + String.length s) 0 !waves
  in
  let events =
    List.fold_left
      (fun acc (_, s) -> acc + Wave.Query.length (Wave.Query.of_stream s))
      0 !waves
  in
  let p =
    {
      wv_name = "campaign-slice";
      wv_units = List.length slice;
      wv_off_s = median off_times;
      wv_on_s = median on_times;
      wv_stream_bytes = stream_bytes;
      wv_events = events;
    }
  in
  Format.printf
    "  %-22s %6d units: taps off %6.0f/s, on %6.0f/s (%.2fx overhead); %d \
     events, %d stream bytes@."
    p.wv_name p.wv_units
    (float_of_int p.wv_units /. p.wv_off_s)
    (float_of_int p.wv_units /. p.wv_on_s)
    (p.wv_on_s /. p.wv_off_s)
    p.wv_events p.wv_stream_bytes;
  p

let write_wave_json ~path p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"reps\": %d,\n" wave_reps;
  Buffer.add_string buf "  \"phases\": [\n";
  Printf.bprintf buf
    "    {\"phase\": \"%s\", \"core\": \"boom\", \"units\": %d, \
     \"off_s\": %.3f, \"off_units_per_s\": %.1f, \"on_s\": %.3f, \
     \"on_units_per_s\": %.1f, \"overhead\": %.3f, \"events\": %d, \
     \"stream_bytes\": %d}\n"
    p.wv_name p.wv_units p.wv_off_s
    (float_of_int p.wv_units /. p.wv_off_s)
    p.wv_on_s
    (float_of_int p.wv_units /. p.wv_on_s)
    (p.wv_on_s /. p.wv_off_s)
    p.wv_events p.wv_stream_bytes;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Machine-readable fuzzing record}

   BENCH_fuzz.json compares blind random sampling (energy 0) against the
   coverage-guided engine (lib/fuzz) at equal seed and budget: test
   cases to full Table 3 coverage per core, the discovery curve of every
   leakage case, and the corpus/coverage statistics.  The engine report
   itself contains no timing (reports must be byte-identical across job
   counts), so wall clocks are wrapped around the calls here. *)

let write_fuzz_json ~path ~seed ~budget results =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"seed\": \"%s\",\n" (Riscv.Word.to_hex seed);
  Printf.bprintf buf "  \"budget\": %d,\n" budget;
  Buffer.add_string buf "  \"campaigns\": [\n";
  List.iteri
    (fun i ((r : Fuzz.Engine.report), wall_time_s) ->
      Printf.bprintf buf
        "    {\"core\": \"%s\", \"mode\": \"%s\", \"energy\": %d, \
         \"executed\": %d, \"cases_to_full_table3\": %s, \
         \"edges_covered\": %d, \"bits_covered\": %d, \
         \"corpus_entries\": %d, \"distilled\": %d, \"wall_time_s\": %.3f, \
         \"cases_per_s\": %.1f, \"discoveries\": [%s]}%s\n"
        (String.lowercase_ascii
           (Uarch.Config.core_kind_to_string r.Fuzz.Engine.config.Uarch.Config.kind))
        (if r.Fuzz.Engine.options.Fuzz.Engine.energy > 0 then "guided"
         else "random")
        r.Fuzz.Engine.options.Fuzz.Engine.energy r.Fuzz.Engine.executed
        (match r.Fuzz.Engine.cases_to_full_table3 with
        | Some n -> string_of_int n
        | None -> "null")
        r.Fuzz.Engine.edges_covered r.Fuzz.Engine.bits_covered
        r.Fuzz.Engine.corpus_entries r.Fuzz.Engine.distilled wall_time_s
        (float_of_int r.Fuzz.Engine.executed /. wall_time_s)
        (String.concat ", "
           (List.map
              (fun (d : Fuzz.Engine.discovery) ->
                Printf.sprintf "{\"case\": \"%s\", \"at\": %d}"
                  (Teesec.Case.to_string d.Fuzz.Engine.case) d.Fuzz.Engine.at)
              r.Fuzz.Engine.discoveries))
        (if i < List.length results - 1 then "," else ""))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Machine-readable symbolic-execution record}

   BENCH_symex.json tracks the symbolic explorer (lib/symex) on the SBI
   surface: path-enumeration throughput, witnesses found, and the time
   to lower the accepted-path witnesses into a fuzz seed corpus.  The
   explorer report itself contains no timing (reports must be
   byte-identical across job counts and observability), so wall clocks
   are wrapped around the calls here; each phase reports the median of
   [symex_reps] repetitions. *)

type symex_phase = {
  sx_core : string;
  sx_paths : int;
  sx_witnesses : int;
  sx_corpus_entries : int;
  sx_explore_s : float;  (** Median over repetitions. *)
  sx_seed_s : float;  (** Witness-to-corpus lowering, median. *)
}

let symex_reps = 3

let run_symex_phases () =
  List.map
    (fun config ->
      let reps name f =
        let acc = ref [] in
        let result = ref None in
        for _ = 1 to symex_reps do
          let r, secs = timed_phase name f in
          result := Some r;
          acc := secs :: !acc
        done;
        (Option.get !result, median (List.rev !acc))
      in
      let report, explore_s =
        reps "symex/explore" (fun () -> Symex.Explore.run ~jobs ~obs config)
      in
      let seeds, seed_s =
        reps "symex/seed-corpus" (fun () -> Symex.Synthesize.testcases_of report)
      in
      let t = report.Symex.Explore.totals in
      {
        sx_core =
          String.lowercase_ascii
            (Uarch.Config.core_kind_to_string config.Uarch.Config.kind);
        sx_paths = t.Symex.Explore.paths_total;
        sx_witnesses = t.Symex.Explore.witnesses_total;
        sx_corpus_entries = List.length seeds;
        sx_explore_s = explore_s;
        sx_seed_s = seed_s;
      })
    [ boom; xiangshan ]

let write_symex_json ~path phases =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"reps\": %d,\n" symex_reps;
  Buffer.add_string buf "  \"phases\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf buf
        "    {\"phase\": \"explore-%s\", \"paths\": %d, \"witnesses\": %d, \
         \"corpus_entries\": %d, \"explore_s\": %.3f, \"paths_per_s\": %.1f, \
         \"corpus_seed_s\": %.4f}%s\n"
        p.sx_core p.sx_paths p.sx_witnesses p.sx_corpus_entries p.sx_explore_s
        (float_of_int p.sx_paths /. p.sx_explore_s)
        p.sx_seed_s
        (if i < List.length phases - 1 then "," else ""))
    phases;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Machine-readable campaign-service record}

   BENCH_serve.json measures the lib/serve daemon on the slice campaign:
   end-to-end submit-to-artifact latency against a cold store (every
   shard executes on a worker) and against a warm store after a daemon
   restart (every shard hits, nothing executes), at 1 and 4 worker
   processes.  The artifact bytes are pinned equal to the one-shot CLI
   by the test suite, so this record tracks only the orchestration cost:
   shards/s through the workers when cold, and the pure
   plan-lookup-assemble overhead when warm. *)

type serve_phase = {
  se_workers : int;
  se_shards : int;
  se_cold_s : float;
  se_warm_s : float;
  se_warm_hits : int;
}

let run_serve_phase () =
  let module Daemon = Serve.Daemon in
  let module Client = Serve.Client in
  let dir = Filename.temp_dir "teesec_bench_serve" "" in
  let rec rm_rf path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let spec =
    Serve.Request.Campaign
      { core = "boom"; mitigations = []; corpus = Serve.Request.Slice }
  in
  let submit_timed cfg =
    let pid = Daemon.spawn cfg in
    let finish () =
      (try Unix.kill pid Sys.sigkill with _ -> ());
      try ignore (Unix.waitpid [] pid) with _ -> ()
    in
    Fun.protect ~finally:finish (fun () ->
        match Client.connect_retry ~socket_path:cfg.Daemon.socket_path () with
        | Error e -> failwith e
        | Ok client ->
          Fun.protect
            ~finally:(fun () -> Client.close client)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              let js =
                match Client.submit client spec with
                | Ok js -> js
                | Error e -> failwith e
              in
              (match Client.results client js.Serve.Protocol.js_job with
              | Ok (Ok _) -> ()
              | Ok (Error _) -> failwith "serve bench: job still pending"
              | Error e -> failwith e);
              let dt = Unix.gettimeofday () -. t0 in
              (match Client.shutdown client with
              | Ok () -> ignore (Unix.waitpid [] pid)
              | Error _ -> ());
              (js, dt)))
  in
  let phases =
    List.map
      (fun workers ->
        let store_root =
          Filename.concat dir (Printf.sprintf "store-w%d" workers)
        in
        let cfg =
          {
            (Daemon.default_config
               ~socket_path:
                 (Filename.concat dir (Printf.sprintf "w%d.sock" workers))
               ~store_root)
            with
            Daemon.workers;
          }
        in
        let js_cold, cold_s = submit_timed cfg in
        let js_warm, warm_s = submit_timed cfg in
        {
          se_workers = workers;
          se_shards = js_cold.Serve.Protocol.js_total;
          se_cold_s = cold_s;
          se_warm_s = warm_s;
          se_warm_hits = js_warm.Serve.Protocol.js_hits;
        })
      [ 1; 4 ]
  in
  rm_rf dir;
  List.iter
    (fun p ->
      Format.printf
        "  %d worker(s): %d shards; cold %.3fs (%.1f shards/s), warm %.3fs \
         (%d/%d hits)@."
        p.se_workers p.se_shards p.se_cold_s
        (float_of_int p.se_shards /. p.se_cold_s)
        p.se_warm_s p.se_warm_hits p.se_shards)
    phases;
  phases

let write_serve_json ~path phases =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"request\": \"campaign slice on boom\",\n";
  Buffer.add_string buf "  \"phases\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf buf
        "    {\"workers\": %d, \"shards\": %d, \"cold_s\": %.3f, \
         \"cold_shards_per_s\": %.1f, \"warm_s\": %.3f, \"warm_hits\": %d}%s\n"
        p.se_workers p.se_shards p.se_cold_s
        (float_of_int p.se_shards /. p.se_cold_s)
        p.se_warm_s p.se_warm_hits
        (if i < List.length phases - 1 then "," else ""))
    phases;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* {1 Experiment regeneration} *)

let section title =
  Format.printf "@.==================== %s ====================@." title

let () =
  Format.printf
    "TEESec evaluation harness: regenerating every table and figure of the paper@.@.";

  (* The service phase MUST run first: Daemon.spawn forks, and forking
     is only safe while this process has a single domain — every later
     phase may fan out across domains via the parallel pool. *)
  section "Extension: campaign service (daemon, workers, store)";
  let serve_phases = run_serve_phase () in
  write_serve_json ~path:"BENCH_serve.json" serve_phases;
  Format.printf "service record written to BENCH_serve.json@.";

  (* Measured before the table/figure phases: once those have run, the
     harness heap is large enough to shift both paths' absolute times
     (see the caveat in EXPERIMENTS.md), so the throughput record is
     taken while the process still looks like a fresh one. *)
  section "Extension: snapshot/fork engine vs replay oracle";
  let snapshot_phases = run_snapshot_phases () in
  write_snapshot_json ~path:"BENCH_snapshot.json" snapshot_phases;
  Format.printf "snapshot record written to BENCH_snapshot.json@.";

  (* Also heap-sensitive, so measured while the process is still small:
     the tap-off baseline is the same slice campaign the snapshot phase
     just timed, and the overhead ratio should reflect the tap, not a
     grown heap. *)
  section "Extension: wave tap overhead";
  let wave_phase = run_wave_phase () in
  write_wave_json ~path:"BENCH_wave.json" wave_phase;
  Format.printf "wave record written to BENCH_wave.json@.";

  (* Micro-benchmarks next; their estimates feed Table 2. *)
  let bench_results = run_benches () in

  section "Table 1";
  print_string (Teesec.Tables.table1 ());

  section "Table 2";
  let timings =
    match
      ( find_ns bench_results "gadget-constructor",
        find_ns bench_results "checker",
        find_ns bench_results "test-case-boom" )
    with
    | Some c, Some k, Some t -> Some (c /. 1e9, k /. 1e9, t /. 1e9)
    | _ -> None
  in
  print_string (Teesec.Tables.table2 ?timings ());

  section "Table 3 (full 585-test-case campaign per core)";
  let campaign_results =
    List.map
      (fun config ->
        Format.printf "running the corpus on %s (%d jobs)...@."
          config.Uarch.Config.name jobs;
        timed_phase "campaign" (fun () ->
            Teesec.Campaign.run_full ~jobs ~obs config))
      [ boom; xiangshan ]
  in
  print_string (Teesec.Tables.table3 (List.map fst campaign_results));
  write_campaign_json ~path:"BENCH_campaign.json" campaign_results;
  Format.printf "campaign record written to BENCH_campaign.json@.";
  (* The paper also evaluated the pre-SonicBOOM release (v2.3). *)
  let v2 =
    Teesec.Campaign.run ~jobs ~obs Uarch.Config.boom_v2
      (Teesec.Mitigation_eval.slice ())
  in
  Format.printf "BOOM v2.3 (corpus slice): %s@."
    (if Teesec.Campaign.matches_paper v2 then
       "same findings as the BOOM column (matches the paper)"
     else "DIFFERS from the BOOM column");
  let distinct =
    List.sort_uniq Teesec.Case.compare
      (List.concat_map (fun (r, _) -> r.Teesec.Campaign.found) campaign_results)
  in
  Format.printf "Distinct vulnerabilities across both designs: %d (paper: 10)@."
    (List.length distinct);

  section "Extension: checker-robustness fault injection";
  let inject_results =
    List.map
      (fun config ->
        Format.printf "injecting 20 fault plans over the slice on %s (%d jobs)...@."
          config.Uarch.Config.name jobs;
        timed_phase "inject" (fun () ->
            Inject.Inject_campaign.run ~jobs ~obs ~seed:0x5EEDL ~plans:20
              config
              (Teesec.Mitigation_eval.slice ())))
      [ boom; xiangshan ]
  in
  List.iter
    (fun ((r : Inject.Inject_campaign.result), wall) ->
      Format.printf "%a  (%.2fs wall)@.@." Inject.Robustness_report.pp r wall)
    inject_results;
  write_inject_json ~path:"BENCH_inject.json" inject_results;
  Format.printf "injection record written to BENCH_inject.json@.";

  section "Extension: coverage-guided fuzzing (random vs guided)";
  let fuzz_seed = 0x5EEDL in
  let fuzz_budget = 150 in
  let fuzz_results =
    List.concat_map
      (fun config ->
        List.map
          (fun energy ->
            Format.printf "fuzzing %s with energy %d%% (%d jobs)...@."
              config.Uarch.Config.name energy jobs;
            timed_phase "fuzz" (fun () ->
                Fuzz.Engine.run ~jobs ~obs
                  {
                    Fuzz.Engine.default with
                    Fuzz.Engine.seed = fuzz_seed;
                    budget = fuzz_budget;
                    energy;
                  }
                  config))
          [ 0; 80 ])
      [ boom; xiangshan ]
  in
  List.iter
    (fun ((r : Fuzz.Engine.report), wall) ->
      Format.printf "%a  (%.2fs wall)@.@." Fuzz.Fuzz_report.pp r wall)
    fuzz_results;
  (* The headline comparison: cases to full Table 3 at equal seed/budget. *)
  List.iter
    (fun config ->
      let at_energy e =
        List.find_map
          (fun ((r : Fuzz.Engine.report), _) ->
            if
              r.Fuzz.Engine.config.Uarch.Config.kind
              = config.Uarch.Config.kind
              && r.Fuzz.Engine.options.Fuzz.Engine.energy = e
            then Some r.Fuzz.Engine.cases_to_full_table3
            else None)
          fuzz_results
      in
      let show = function
        | Some (Some n) -> string_of_int n
        | _ -> Printf.sprintf ">%d (not reached)" fuzz_budget
      in
      Format.printf
        "%s: cases to full Table 3 -- random %s vs guided %s@."
        config.Uarch.Config.name
        (show (at_energy 0))
        (show (at_energy 80)))
    [ boom; xiangshan ];
  write_fuzz_json ~path:"BENCH_fuzz.json" ~seed:fuzz_seed ~budget:fuzz_budget
    fuzz_results;
  Format.printf "fuzzing record written to BENCH_fuzz.json@.";

  section "Extension: symbolic execution of the SBI surface";
  let symex_phases = run_symex_phases () in
  List.iter
    (fun p ->
      Format.printf
        "  %-10s %3d paths, %3d witnesses -> %2d corpus entries; explore \
         %.3fs (%.0f paths/s), seed corpus %.4fs@."
        p.sx_core p.sx_paths p.sx_witnesses p.sx_corpus_entries p.sx_explore_s
        (float_of_int p.sx_paths /. p.sx_explore_s)
        p.sx_seed_s)
    symex_phases;
  write_symex_json ~path:"BENCH_symex.json" symex_phases;
  Format.printf "symex record written to BENCH_symex.json@.";

  section "Table 4 (mitigation matrix per core)";
  let mitigation_results =
    List.map (Teesec.Mitigation_eval.evaluate ~jobs) [ boom; xiangshan ]
  in
  print_string (Teesec.Tables.table4 mitigation_results);

  section "Verification-plan coverage";
  List.iter
    (fun config ->
      Format.printf "%a@." Teesec.Coverage.pp
        (Teesec.Coverage.measure ~jobs config (Teesec.Mitigation_eval.slice ())))
    [ boom; xiangshan ];

  section "Extension: mitigation performance ablation";
  List.iter
    (fun workload ->
      let overhead_results =
        List.map (Teesec.Overhead.evaluate ~workload ~jobs) [ boom; xiangshan ]
      in
      print_string (Teesec.Overhead.table overhead_results);
      print_newline ())
    [ Teesec.Overhead.Mixed; Teesec.Overhead.Switch_heavy; Teesec.Overhead.Compute_heavy ];

  section "Extension: uBTB partial-tag width sweep (Figure 7 ablation)";
  List.iter
    (fun config ->
      Format.printf "%s (PCs differ at bit 27; offset+index cover %d bits):@."
        config.Uarch.Config.name
        (1 + 10);
      List.iter
        (fun (bits, aliases, distinguishable) ->
          Format.printf
            "  tag=%2d bits: PCs alias=%b, probe distinguishes enclave branch=%b@."
            bits aliases distinguishable)
        (Teesec.Scenarios.btb_tag_sweep config
           ~tag_bits:[ 12; 14; 16; 17; 18; 20 ]))
    [ xiangshan ];

  section "Extension: mitigation recommendations";
  List.iter
    (fun config ->
      Format.printf "%a@." Teesec.Recommend.pp_result
        (Teesec.Recommend.evaluate ~max_size:2 config))
    [ boom; xiangshan ];

  List.iter
    (fun config ->
      section
        (Printf.sprintf "Figures 2-7 on %s"
           (Uarch.Config.core_kind_to_string config.Uarch.Config.kind));
      List.iter
        (fun (_, trace) -> Format.printf "%a@." Teesec.Scenarios.pp_trace trace)
        (Teesec.Scenarios.all config))
    [ boom; xiangshan ];

  section "Summary";
  List.iter
    (fun ((r : Teesec.Campaign.result), _) ->
      Format.printf "%s: Table 3 %s@." r.Teesec.Campaign.config.Uarch.Config.name
        (if Teesec.Campaign.matches_paper r then "MATCHES the paper"
         else "DIFFERS from the paper"))
    campaign_results
