test/test_tee.ml: Alcotest Instr Int64 List Memory Option Pmp Printf Priv Program QCheck QCheck_alcotest Riscv Simlog Tee Uarch Word
