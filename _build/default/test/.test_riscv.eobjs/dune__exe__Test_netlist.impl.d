test/test_netlist.ml: Alcotest Cell Design Designs Gen List Memory_pass Netlist Printf QCheck QCheck_alcotest String Verilog_gen
