test/test_simlog.mli:
