test/test_teesec.mli:
