test/test_riscv.ml: Alcotest Array Csr Instr Int64 List Memory Page_table Pmp Printf Priv Program QCheck QCheck_alcotest Riscv Word
