test/test_encode.ml: Alcotest Array Csr Decode Encode Instr Int64 List Pmp Printf Priv Program QCheck QCheck_alcotest Riscv Simlog Uarch Word
