test/test_simlog.ml: Alcotest Filename Gen Int64 List QCheck QCheck_alcotest Riscv Simlog Sys
