test/test_differential.ml: Alcotest Array Format Instr Int64 List Memory Pmp Printf Priv Program QCheck QCheck_alcotest Riscv Simlog Uarch Word
