(* Tests for the microarchitectural simulator: the individual structures
   and the machine's load/store-unit, page-walker, prefetcher, branch
   prediction and transient-execution semantics. *)

open Riscv
module Cache = Uarch.Cache
module Lfb = Uarch.Lfb
module Store_buffer = Uarch.Store_buffer
module Tlb = Uarch.Tlb
module Btb = Uarch.Btb
module Hpc = Uarch.Hpc
module Regfile = Uarch.Regfile
module Machine = Uarch.Machine
module Config = Uarch.Config
module Mitigation = Uarch.Mitigation
module Log = Simlog.Log
module Structure = Simlog.Structure
module Exec_context = Simlog.Exec_context

let word = Alcotest.testable Word.pp Int64.equal
let line_of_value v = Array.make 8 v
let host_s = Exec_context.Host Priv.Supervisor

(* {1 Cache} *)

let test_cache_insert_lookup () =
  let c = Cache.create ~sets:4 ~ways:2 in
  Alcotest.(check bool) "empty miss" true (Cache.lookup c ~addr:0x1000L = None);
  ignore (Cache.insert c ~addr:0x1000L (line_of_value 7L));
  Alcotest.(check bool) "hit after insert" true (Cache.contains c ~addr:0x1000L);
  Alcotest.(check bool) "hit anywhere in line" true (Cache.contains c ~addr:0x1038L);
  Alcotest.(check bool) "next line misses" false (Cache.contains c ~addr:0x1040L);
  (match Cache.read_word c ~addr:0x1008L with
  | Some v -> Alcotest.(check word) "word value" 7L v
  | None -> Alcotest.fail "expected hit")

let test_cache_write_dirty_evict () =
  let c = Cache.create ~sets:4 ~ways:1 in
  ignore (Cache.insert c ~addr:0x1000L (line_of_value 1L));
  Alcotest.(check bool) "write hits" true (Cache.write_word c ~addr:0x1008L 99L);
  (* Same set (4 sets x 64B lines -> stride 256B), different tag. *)
  (match Cache.insert c ~addr:0x1100L (line_of_value 2L) with
  | Some (victim_addr, victim_line, dirty) ->
    Alcotest.(check word) "victim address" 0x1000L victim_addr;
    Alcotest.(check bool) "victim dirty" true dirty;
    Alcotest.(check word) "victim carries the write" 99L victim_line.(1)
  | None -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "old line gone" false (Cache.contains c ~addr:0x1000L)

let test_cache_clean_eviction () =
  let c = Cache.create ~sets:4 ~ways:1 in
  ignore (Cache.insert c ~addr:0x1000L (line_of_value 1L));
  (match Cache.insert c ~addr:0x1100L (line_of_value 2L) with
  | Some (_, _, dirty) -> Alcotest.(check bool) "clean victim" false dirty
  | None -> Alcotest.fail "expected eviction")

let test_cache_flush () =
  let c = Cache.create ~sets:4 ~ways:2 in
  ignore (Cache.insert c ~addr:0x1000L (line_of_value 1L));
  ignore (Cache.insert c ~addr:0x2000L (line_of_value 2L));
  ignore (Cache.write_word c ~addr:0x2000L 5L);
  let dirty = Cache.flush c in
  Alcotest.(check int) "one dirty line written back" 1 (List.length dirty);
  Alcotest.(check int) "cache empty" 0 (List.length (Cache.valid_lines c))

let test_cache_evict_explicit () =
  let c = Cache.create ~sets:4 ~ways:2 in
  ignore (Cache.insert c ~addr:0x1000L (line_of_value 3L));
  (match Cache.evict c ~addr:0x1000L with
  | Some (line, dirty) ->
    Alcotest.(check word) "line content" 3L line.(0);
    Alcotest.(check bool) "was clean" false dirty
  | None -> Alcotest.fail "expected line");
  Alcotest.(check bool) "gone" false (Cache.contains c ~addr:0x1000L);
  Alcotest.(check bool) "evicting again is none" true (Cache.evict c ~addr:0x1000L = None)

let test_cache_snapshot () =
  let c = Cache.create ~sets:4 ~ways:2 in
  ignore (Cache.insert c ~addr:0x1000L (line_of_value 0xABL));
  let entries = Cache.snapshot c in
  Alcotest.(check int) "8 words per line" 8 (List.length entries);
  Alcotest.(check bool) "snapshot carries values" true
    (List.for_all (fun (e : Log.entry) -> Int64.equal e.Log.data 0xABL) entries)

(* {1 LFB} *)

let test_lfb_stale_retention () =
  let lfb = Lfb.create ~entries:2 ~retains_stale:true in
  let slot = Lfb.fill lfb ~addr:0x1000L ~data:(line_of_value 0xCAFEL) in
  Alcotest.(check int) "occupied" 1 (Lfb.occupied lfb);
  Lfb.complete lfb ~slot;
  Alcotest.(check int) "completed entries invalid" 0 (Lfb.occupied lfb);
  Alcotest.(check bool) "BOOM-style: stale data visible" true
    (Lfb.holds_value lfb 0xCAFEL)

let test_lfb_zeroing () =
  let lfb = Lfb.create ~entries:2 ~retains_stale:false in
  let slot = Lfb.fill lfb ~addr:0x1000L ~data:(line_of_value 0xCAFEL) in
  Lfb.complete lfb ~slot;
  Alcotest.(check bool) "XiangShan-style: zeroed on completion" false
    (Lfb.holds_value lfb 0xCAFEL)

let test_lfb_slot_reuse () =
  let lfb = Lfb.create ~entries:2 ~retains_stale:true in
  let s0 = Lfb.fill lfb ~addr:0x1000L ~data:(line_of_value 1L) in
  let s1 = Lfb.fill lfb ~addr:0x2000L ~data:(line_of_value 2L) in
  Alcotest.(check bool) "distinct slots" true (s0 <> s1);
  Lfb.complete lfb ~slot:s0;
  Lfb.complete lfb ~slot:s1;
  (* Round-robin reuse overwrites the oldest stale data. *)
  let s2 = Lfb.fill lfb ~addr:0x3000L ~data:(line_of_value 3L) in
  Alcotest.(check int) "reused slot 0" s0 s2;
  Alcotest.(check bool) "old slot-0 data overwritten" false (Lfb.holds_value lfb 1L);
  Alcotest.(check bool) "slot-1 stale data still there" true (Lfb.holds_value lfb 2L)

let test_lfb_flush () =
  let lfb = Lfb.create ~entries:2 ~retains_stale:true in
  let slot = Lfb.fill lfb ~addr:0x1000L ~data:(line_of_value 9L) in
  Lfb.complete lfb ~slot;
  Lfb.flush lfb;
  Alcotest.(check bool) "flushed" false (Lfb.holds_value lfb 9L);
  Alcotest.(check int) "snapshot empty" 0 (List.length (Lfb.snapshot lfb))

(* {1 Store buffer} *)

let entry ?(origin = Log.Explicit_store) addr size value =
  { Store_buffer.addr; size; value; ctx_note = "test"; origin }

let test_stb_forwarding () =
  let stb = Store_buffer.create ~entries:4 in
  Store_buffer.push stb (entry 0x1000L 8 0x1122334455667788L);
  (match Store_buffer.forward stb ~addr:0x1000L ~size:8 with
  | Store_buffer.Forwarded v -> Alcotest.(check word) "full forward" 0x1122334455667788L v
  | _ -> Alcotest.fail "expected forward");
  (match Store_buffer.forward stb ~addr:0x1002L ~size:2 with
  | Store_buffer.Forwarded v -> Alcotest.(check word) "sub-word forward" 0x5566L v
  | _ -> Alcotest.fail "expected sub-word forward");
  Alcotest.(check bool) "other address misses" true
    (Store_buffer.forward stb ~addr:0x2000L ~size:8 = Store_buffer.No_match);
  (* A load extending past the covering store is a forwarding conflict. *)
  Alcotest.(check bool) "partial coverage conflicts" true
    (Store_buffer.forward stb ~addr:0x1004L ~size:8 = Store_buffer.Partial_conflict)

let test_stb_youngest_wins () =
  let stb = Store_buffer.create ~entries:4 in
  Store_buffer.push stb (entry 0x1000L 8 1L);
  Store_buffer.push stb (entry 0x1000L 8 2L);
  (match Store_buffer.forward stb ~addr:0x1000L ~size:8 with
  | Store_buffer.Forwarded v -> Alcotest.(check word) "youngest store wins" 2L v
  | _ -> Alcotest.fail "expected forward")

let test_stb_drain_order () =
  let stb = Store_buffer.create ~entries:4 in
  Store_buffer.push stb (entry 0x1000L 8 1L);
  Store_buffer.push stb (entry 0x2000L 8 2L);
  let drained = Store_buffer.drain stb in
  Alcotest.(check (list int64)) "oldest first"
    [ 1L; 2L ]
    (List.map (fun (e : Store_buffer.entry) -> e.Store_buffer.value) drained);
  Alcotest.(check int) "empty after drain" 0 (Store_buffer.occupancy stb)

let test_stb_capacity () =
  let stb = Store_buffer.create ~entries:2 in
  Alcotest.(check bool) "not full" false (Store_buffer.is_full stb);
  Store_buffer.push stb (entry 0x1000L 8 1L);
  Store_buffer.push stb (entry 0x2000L 8 2L);
  Alcotest.(check bool) "full at capacity" true (Store_buffer.is_full stb)

(* {1 TLB} *)

let test_tlb () =
  let tlb = Tlb.create ~entries:2 in
  Alcotest.(check bool) "empty" true (Tlb.lookup tlb ~vaddr:0x4000_0123L = None);
  Tlb.insert tlb ~vaddr:0x4000_0000L ~paddr:0x8004_0000L ~perm:Page_table.user_rw;
  (match Tlb.lookup tlb ~vaddr:0x4000_0123L with
  | Some e ->
    Alcotest.(check word) "translation" 0x8004_0123L (Tlb.translate e ~vaddr:0x4000_0123L)
  | None -> Alcotest.fail "expected hit");
  (* Same page re-insert reuses the slot. *)
  Tlb.insert tlb ~vaddr:0x4000_0000L ~paddr:0x8005_0000L ~perm:Page_table.user_rw;
  Alcotest.(check int) "no duplicate entries" 1 (Tlb.occupancy tlb);
  Tlb.flush tlb;
  Alcotest.(check int) "flush empties" 0 (Tlb.occupancy tlb)

let test_tlb_eviction () =
  let tlb = Tlb.create ~entries:2 in
  List.iter
    (fun i ->
      Tlb.insert tlb
        ~vaddr:(Int64.of_int (0x4000_0000 + (i * 4096)))
        ~paddr:(Int64.of_int (0x8004_0000 + (i * 4096)))
        ~perm:Page_table.user_rw)
    [ 0; 1; 2 ];
  Alcotest.(check int) "bounded occupancy" 2 (Tlb.occupancy tlb);
  Alcotest.(check bool) "round-robin evicted first entry" true
    (Tlb.lookup tlb ~vaddr:0x4000_0000L = None)

(* {1 BTB} *)

let test_btb_partial_tags_alias () =
  let btb = Btb.create ~entries:1024 ~tag_bits:16 ~ways:1 () in
  let host_pc = 0x8000_0008L in
  let enclave_pc = 0x8800_0008L in
  (* Bit 27 is above index (10 bits) + tag (16 bits) + offset (1). *)
  Alcotest.(check bool) "aliasing PCs" true (Btb.aliases btb ~pc1:host_pc ~pc2:enclave_pc);
  Alcotest.(check bool) "different low bits do not alias" false
    (Btb.aliases btb ~pc1:host_pc ~pc2:0x8000_000CL);
  (* PCs differing inside the tag range do not alias. *)
  Alcotest.(check bool) "tag bits distinguish" false
    (Btb.aliases btb ~pc1:host_pc ~pc2:0x8001_0008L)

let test_btb_update_lookup () =
  let btb = Btb.create ~entries:1024 ~tag_bits:16 ~ways:1 () in
  let pc = 0x8000_0008L in
  Alcotest.(check bool) "cold miss" true (Btb.lookup btb ~pc = None);
  let _set, _entry = Btb.update btb ~pc ~target:0x8000_0010L ~taken:true ~owner:host_s in
  (match Btb.lookup btb ~pc with
  | Some e ->
    Alcotest.(check bool) "taken recorded" true e.Btb.taken;
    Alcotest.(check word) "target recorded" 0x8000_0010L e.Btb.target
  | None -> Alcotest.fail "expected hit");
  (* An aliasing enclave branch overwrites the direction. *)
  let _ =
    Btb.update btb ~pc:0x8800_0008L ~target:0x8800_0020L ~taken:false
      ~owner:(Exec_context.Enclave 0)
  in
  (match Btb.lookup btb ~pc with
  | Some e ->
    Alcotest.(check bool) "direction flipped by aliasing branch" false e.Btb.taken;
    Alcotest.(check bool) "owner is the enclave" true
      (Exec_context.equal e.Btb.owner (Exec_context.Enclave 0))
  | None -> Alcotest.fail "expected hit after alias")

let test_btb_residue_and_flush () =
  let btb = Btb.create ~entries:1024 ~tag_bits:16 ~ways:1 () in
  let _ = Btb.update btb ~pc:0x8800_0008L ~target:0L ~taken:true ~owner:(Exec_context.Enclave 0) in
  let _ = Btb.update btb ~pc:0x8000_0100L ~target:0L ~taken:true ~owner:host_s in
  let residue =
    Btb.residue btb ~f:(function Exec_context.Enclave _ -> true | _ -> false)
  in
  Alcotest.(check int) "one enclave-owned entry" 1 (List.length residue);
  Btb.flush btb;
  Alcotest.(check int) "flush clears" 0 (Btb.occupancy btb)

let test_btb_owner_tagging () =
  let btb = Btb.create ~tagged_by_owner:true ~entries:1024 ~tag_bits:16 ~ways:1 () in
  let pc = 0x8000_0008L in
  let _ =
    Btb.update btb ~pc:0x8800_0008L ~target:0L ~taken:true ~owner:(Exec_context.Enclave 0)
  in
  (* The raw entry is there... *)
  Alcotest.(check bool) "entry resident" true (Btb.lookup btb ~pc <> None);
  (* ...but a host fetch does not hit it. *)
  Alcotest.(check bool) "host prediction filtered" true
    (Btb.predict btb ~pc ~ctx:host_s = None);
  Alcotest.(check bool) "enclave prediction hits" true
    (Btb.predict btb ~pc:0x8800_0008L ~ctx:(Exec_context.Enclave 0) <> None);
  (* Without tagging, predict behaves like lookup. *)
  let plain = Btb.create ~entries:1024 ~tag_bits:16 ~ways:1 () in
  let _ = Btb.update plain ~pc:0x8800_0008L ~target:0L ~taken:true ~owner:(Exec_context.Enclave 0) in
  Alcotest.(check bool) "untagged predict hits cross-domain" true
    (Btb.predict plain ~pc ~ctx:host_s <> None);
  (* The snapshot marks tagged entries for the checker. *)
  let marked =
    List.exists
      (fun (e : Log.entry) ->
        let n = e.Log.note in
        let needle = "id-tagged" in
        let rec at i =
          i + String.length needle <= String.length n
          && (String.sub n i (String.length needle) = needle || at (i + 1))
        in
        at 0)
      (Btb.snapshot btb)
  in
  Alcotest.(check bool) "snapshot marks id-tagged" true marked

let test_btb_set_associative () =
  let btb = Btb.create ~entries:16 ~tag_bits:8 ~ways:4 () in
  (* Fill all four ways of one set with distinct tags. *)
  let pcs =
    (* 4 sets -> index bits [2:1]; tags differ at bit 3 upward. *)
    List.map (fun i -> Int64.of_int ((i * 8) lor 0b010)) [ 1; 2; 3; 4 ]
  in
  List.iter (fun pc -> ignore (Btb.update btb ~pc ~target:pc ~taken:true ~owner:host_s)) pcs;
  List.iter
    (fun pc ->
      Alcotest.(check bool)
        (Printf.sprintf "pc %Ld resident" pc)
        true
        (Btb.lookup btb ~pc <> None))
    pcs;
  (* A fifth conflicting branch evicts one of them. *)
  ignore (Btb.update btb ~pc:50L ~target:50L ~taken:true ~owner:host_s);
  let resident = List.filter (fun pc -> Btb.lookup btb ~pc <> None) pcs in
  Alcotest.(check int) "one way reclaimed" 3 (List.length resident)

(* {1 HPC} *)

let test_hpc_bump_read () =
  let csr = Csr.create () in
  Hpc.bump csr Hpc.L1d_miss;
  Hpc.bump csr Hpc.L1d_miss;
  Hpc.bump csr Hpc.Branch;
  Alcotest.(check word) "l1d miss" 2L (Hpc.read csr Hpc.L1d_miss);
  Alcotest.(check word) "branch" 1L (Hpc.read csr Hpc.Branch);
  Alcotest.(check word) "untouched" 0L (Hpc.read csr Hpc.Dtlb_miss);
  let snapshot = Hpc.snapshot csr in
  Alcotest.(check int) "snapshot covers all counters"
    (List.length Csr.modelled_counters) (List.length snapshot)

let test_hpc_distinct_indices () =
  let indices = List.map Hpc.counter_index Hpc.all_events in
  Alcotest.(check int) "distinct counter indices" (List.length Hpc.all_events)
    (List.length (List.sort_uniq compare indices))

(* {1 Regfile} *)

let test_regfile () =
  let rf = Regfile.create ~regs:4 in
  Alcotest.(check bool) "empty" false (Regfile.holds_value rf 42L);
  let s0 = Regfile.writeback rf ~value:42L ~ctx:host_s ~transient:false in
  Alcotest.(check bool) "value present" true (Regfile.holds_value rf 42L);
  (* Round-robin reuse eventually overwrites. *)
  for i = 0 to 3 do
    ignore (Regfile.writeback rf ~value:(Int64.of_int i) ~ctx:host_s ~transient:true)
  done;
  Alcotest.(check bool) "overwritten after wrap" false (Regfile.holds_value rf 42L);
  Alcotest.(check bool) "slot index in range" true (s0 >= 0 && s0 < 4);
  let snapshot = Regfile.snapshot rf in
  Alcotest.(check int) "all slots in use" 4 (List.length snapshot);
  Alcotest.(check bool) "transient marked in notes" true
    (List.exists
       (fun (e : Log.entry) ->
         let n = e.Log.note in
         String.length n >= 9 && String.sub n (String.length n - 9) 9 = "transient")
       snapshot)

(* {1 Machine: micro-op level} *)

(* A machine with an allow-all PMP and a protected window, mirroring the
   monitor's host view. *)
let machine_with_pmp config =
  let m = Machine.create config in
  let pmp = Machine.pmp m in
  Pmp.set pmp 0
    (Pmp.napot_entry ~base:0x8800_0000L ~size:0x1_0000 ~perm:Pmp.no_access ~locked:false);
  Pmp.set pmp 15
    (Pmp.napot_entry ~base:0x8000_0000L ~size:0x8000_0000 ~perm:Pmp.full_access
       ~locked:false);
  Machine.set_context m host_s;
  m

let test_load_store_roundtrip () =
  let m = machine_with_pmp Config.boom in
  let fault = Machine.store m ~vaddr:0x8000_1000L ~size:8 ~value:0x1234L () in
  Alcotest.(check bool) "store ok" true (fault = None);
  Machine.fence m;
  let r = Machine.load m ~vaddr:0x8000_1000L ~size:8 () in
  Alcotest.(check bool) "load ok" true (r.Machine.fault = None);
  Alcotest.(check word) "value" 0x1234L r.Machine.value

let test_store_to_load_forward () =
  let m = machine_with_pmp Config.xiangshan in
  ignore (Machine.store m ~vaddr:0x8000_1000L ~size:8 ~value:0xABCDL ());
  (* No fence: the load must be satisfied by the store buffer. *)
  let r = Machine.load m ~vaddr:0x8000_1000L ~size:8 () in
  Alcotest.(check word) "forwarded" 0xABCDL r.Machine.value;
  Alcotest.(check word) "stlf counted" 1L (Hpc.read (Machine.csr m) Hpc.Store_to_load_forward)

let test_load_miss_then_hit_latency () =
  let m = machine_with_pmp Config.xiangshan in
  Memory.write (Machine.memory m) ~addr:0x8000_2000L ~size:8 77L;
  let miss = Machine.load m ~vaddr:0x8000_2000L ~size:8 () in
  let hit = Machine.load m ~vaddr:0x8000_2000L ~size:8 () in
  Alcotest.(check word) "miss value" 77L miss.Machine.value;
  Alcotest.(check word) "hit value" 77L hit.Machine.value;
  Alcotest.(check bool) "hit faster than miss" true (hit.Machine.latency < miss.Machine.latency);
  Alcotest.(check int) "hit latency is the configured L1 latency"
    Config.xiangshan.Config.latencies.Config.l1_hit hit.Machine.latency

let test_misaligned_load () =
  let m = machine_with_pmp Config.boom in
  Memory.write (Machine.memory m) ~addr:0x8000_3000L ~size:8 0x1122334455667788L;
  Memory.write (Machine.memory m) ~addr:0x8000_3008L ~size:8 0xAABBCCDDEEFF0011L;
  let r = Machine.load m ~vaddr:0x8000_3004L ~size:8 () in
  Alcotest.(check bool) "no fault" true (r.Machine.fault = None);
  Alcotest.(check word) "assembled across granules" 0xEEFF001111223344L r.Machine.value

let secret_addr = 0x8800_8000L
let secret_value = 0x5EC4E7_0F_D00DL

(* Place a protected secret in the machine's L1 by loading it from
   machine mode (which bypasses the unlocked PMP entry). *)
let warm_secret_into_l1 m =
  Memory.write (Machine.memory m) ~addr:secret_addr ~size:8 secret_value;
  Machine.set_context m Exec_context.Monitor;
  ignore (Machine.load m ~vaddr:secret_addr ~size:8 ());
  Machine.set_context m host_s

let test_faulting_load_l1_hit_forwards () =
  List.iter
    (fun config ->
      let m = machine_with_pmp config in
      warm_secret_into_l1 m;
      let r = Machine.load m ~vaddr:secret_addr ~size:8 () in
      Alcotest.(check bool) "fault raised" true (r.Machine.fault <> None);
      Alcotest.(check bool) "transient forward" true r.Machine.transient_forward;
      Alcotest.(check word) "secret forwarded" secret_value r.Machine.value;
      Alcotest.(check bool) "secret in physical RF" true (Machine.rf_holds m secret_value))
    [ Config.boom; Config.xiangshan ]

let test_faulting_miss_boom_fills_lfb () =
  let m = machine_with_pmp Config.boom in
  Memory.write (Machine.memory m) ~addr:secret_addr ~size:8 secret_value;
  let r = Machine.load m ~vaddr:secret_addr ~size:8 () in
  Alcotest.(check bool) "fault raised" true (r.Machine.fault <> None);
  Alcotest.(check bool) "no RF forward on the miss path" false r.Machine.transient_forward;
  Alcotest.(check bool) "BOOM: secret line in LFB" true (Machine.lfb_holds m secret_value)

let test_faulting_miss_xs_fake_hit () =
  let m = machine_with_pmp Config.xiangshan in
  Memory.write (Machine.memory m) ~addr:secret_addr ~size:8 secret_value;
  let r = Machine.load m ~vaddr:secret_addr ~size:8 () in
  Alcotest.(check bool) "fault raised" true (r.Machine.fault <> None);
  Alcotest.(check word) "fake hit returns zero" 0L r.Machine.value;
  Alcotest.(check bool) "XS: no LFB fill" false (Machine.lfb_holds m secret_value);
  Alcotest.(check int) "slower miss response"
    Config.xiangshan.Config.latencies.Config.l1_miss r.Machine.latency

let test_faulting_load_stb_forward_xs_only () =
  let run config =
    let m = machine_with_pmp config in
    (* An enclave-style store left pending in the buffer. *)
    Machine.set_context m (Exec_context.Enclave 0);
    let pmp = Machine.pmp m in
    Pmp.set pmp 0
      (Pmp.napot_entry ~base:0x8800_0000L ~size:0x1_0000 ~perm:Pmp.full_access
         ~locked:false);
    ignore (Machine.store m ~vaddr:secret_addr ~size:8 ~value:secret_value ());
    Pmp.set pmp 0
      (Pmp.napot_entry ~base:0x8800_0000L ~size:0x1_0000 ~perm:Pmp.no_access
         ~locked:false);
    Machine.set_context m host_s;
    Machine.load m ~vaddr:secret_addr ~size:8 ()
  in
  let xs = run Config.xiangshan in
  Alcotest.(check bool) "XS forwards transiently" true xs.Machine.transient_forward;
  Alcotest.(check word) "XS forwards the secret" secret_value xs.Machine.value;
  let boom = run Config.boom in
  Alcotest.(check bool) "BOOM does not forward from the buffer" true
    (not (Int64.equal boom.Machine.value secret_value))

let test_clear_illegal_data_returns () =
  let config = Config.with_mitigations Config.boom [ Mitigation.Clear_illegal_data_returns ] in
  let m = machine_with_pmp config in
  warm_secret_into_l1 m;
  let r = Machine.load m ~vaddr:secret_addr ~size:8 () in
  Alcotest.(check bool) "fault still raised" true (r.Machine.fault <> None);
  Alcotest.(check word) "data zeroed" 0L r.Machine.value;
  Alcotest.(check bool) "no transient forward" false r.Machine.transient_forward;
  (* And the miss path no longer fills the LFB. *)
  let m2 = machine_with_pmp config in
  Memory.write (Machine.memory m2) ~addr:secret_addr ~size:8 secret_value;
  ignore (Machine.load m2 ~vaddr:secret_addr ~size:8 ());
  Alcotest.(check bool) "no LFB fill under mitigation" false
    (Machine.lfb_holds m2 secret_value)

let test_store_fault_no_side_effect () =
  let m = machine_with_pmp Config.boom in
  let fault = Machine.store m ~vaddr:secret_addr ~size:8 ~value:1L () in
  Alcotest.(check bool) "store faults" true (fault <> None);
  Alcotest.(check int) "nothing buffered" 0 (Machine.store_buffer_occupancy m);
  Machine.fence m;
  Alcotest.(check word) "memory untouched" 0L
    (Memory.read (Machine.memory m) ~addr:secret_addr ~size:8)

let test_prefetcher_no_permission_check () =
  let m = machine_with_pmp Config.boom in
  Memory.write (Machine.memory m) ~addr:0x8800_0000L ~size:8 secret_value;
  (* Legal load in the last line before the protected region. *)
  let r = Machine.load m ~vaddr:0x87FF_FFF8L ~size:8 () in
  Alcotest.(check bool) "demand load legal" true (r.Machine.fault = None);
  Alcotest.(check bool) "prefetcher pulled the protected line" true
    (Machine.lfb_holds m secret_value)

let test_no_prefetcher_on_xs () =
  let m = machine_with_pmp Config.xiangshan in
  Memory.write (Machine.memory m) ~addr:0x8800_0000L ~size:8 secret_value;
  ignore (Machine.load m ~vaddr:0x87FF_FFF8L ~size:8 ());
  Alcotest.(check bool) "no prefetch on XiangShan" false (Machine.lfb_holds m secret_value)

(* {1 Machine: translation and page walks} *)

let with_page_tables m =
  let mem = Machine.memory m in
  let b = Page_table.create_builder mem ~table_region:0x8020_0000L () in
  Page_table.map_range b ~vaddr:0x4000_0000L ~paddr:0x8004_0000L ~size:8192L
    ~perm:Page_table.supervisor_rw;
  Csr.raw_write (Machine.csr m) Csr.Satp (Page_table.satp_of_root (Page_table.root b))

let test_translated_load () =
  let m = machine_with_pmp Config.boom in
  with_page_tables m;
  Memory.write (Machine.memory m) ~addr:0x8004_0100L ~size:8 0x600DL;
  let r = Machine.load m ~vaddr:0x4000_0100L ~size:8 () in
  Alcotest.(check bool) "no fault" true (r.Machine.fault = None);
  Alcotest.(check word) "translated load value" 0x600DL r.Machine.value;
  Alcotest.(check word) "tlb miss counted" 1L (Hpc.read (Machine.csr m) Hpc.Dtlb_miss);
  (* Second access hits the TLB: no further walk. *)
  let walks_before = Hpc.read (Machine.csr m) Hpc.Ptw_walk_event in
  ignore (Machine.load m ~vaddr:0x4000_0108L ~size:8 ());
  Alcotest.(check word) "no second walk" walks_before
    (Hpc.read (Machine.csr m) Hpc.Ptw_walk_event)

let test_unmapped_vaddr_page_faults () =
  let m = machine_with_pmp Config.boom in
  with_page_tables m;
  let r = Machine.load m ~vaddr:0x5000_0000L ~size:8 () in
  (match r.Machine.fault with
  | Some { Machine.cause = Machine.Load_page_fault; _ } -> ()
  | _ -> Alcotest.fail "expected load page fault")

let test_hijacked_satp_boom_vs_xs () =
  let run config =
    let m = machine_with_pmp config in
    Memory.write (Machine.memory m) ~addr:secret_addr ~size:8 secret_value;
    (* satp points straight into the protected region. *)
    Csr.raw_write (Machine.csr m) Csr.Satp (Page_table.satp_of_root secret_addr);
    let r = Machine.load m ~vaddr:0L ~size:8 () in
    (r, m)
  in
  let r_boom, m_boom = run Config.boom in
  Alcotest.(check bool) "BOOM walk faults" true (r_boom.Machine.fault <> None);
  Alcotest.(check bool) "BOOM: PTE line leaked into LFB" true
    (Machine.lfb_holds m_boom secret_value);
  let r_xs, m_xs = run Config.xiangshan in
  Alcotest.(check bool) "XS walk faults" true (r_xs.Machine.fault <> None);
  Alcotest.(check bool) "XS: PMP pre-check suppresses the request" false
    (Machine.lfb_holds m_xs secret_value)

(* {1 Machine: program execution} *)

let run_program m instrs =
  Machine.run m (Program.of_instrs ~base:0x8000_0000L instrs)

let test_interpreter_alu () =
  let m = machine_with_pmp Config.boom in
  let stop =
    run_program m
      [
        Instr.Li (Instr.t0, 40L);
        Instr.Li (Instr.t1, 2L);
        Instr.Alu (Instr.Add, Instr.a0, Instr.t0, Instr.t1);
        Instr.Alui (Instr.Sll, Instr.a1, Instr.a0, 1L);
        Instr.Alu (Instr.Xor, Instr.a2, Instr.a1, Instr.a0);
        Instr.Halt;
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Machine.Halted);
  Alcotest.(check word) "add" 42L (Machine.get_reg m Instr.a0);
  Alcotest.(check word) "shift" 84L (Machine.get_reg m Instr.a1);
  Alcotest.(check word) "xor" (Int64.logxor 84L 42L) (Machine.get_reg m Instr.a2)

let test_interpreter_x0_hardwired () =
  let m = machine_with_pmp Config.boom in
  ignore (run_program m [ Instr.Li (0, 99L); Instr.Alu (Instr.Add, Instr.a0, 0, 0); Instr.Halt ]);
  Alcotest.(check word) "x0 stays zero" 0L (Machine.get_reg m Instr.a0)

let test_interpreter_branch_loop () =
  let m = machine_with_pmp Config.boom in
  let prog =
    Program.assemble ~base:0x8000_0000L
      [
        Program.Instr (Instr.Li (Instr.t0, 0L));
        Program.Instr (Instr.Li (Instr.t1, 5L));
        Program.Label "loop";
        Program.Instr (Instr.Alui (Instr.Add, Instr.t0, Instr.t0, 1L));
        Program.Instr (Instr.Branch (Instr.Lt, Instr.t0, Instr.t1, "loop"));
        Program.Instr Instr.Halt;
      ]
  in
  Alcotest.(check bool) "halts" true (Machine.run m prog = Machine.Halted);
  Alcotest.(check word) "loop counted to 5" 5L (Machine.get_reg m Instr.t0);
  Alcotest.(check word) "branches counted" 5L (Hpc.read (Machine.csr m) Hpc.Branch)

let test_interpreter_faulting_load_skipped () =
  let m = machine_with_pmp Config.boom in
  warm_secret_into_l1 m;
  let stop =
    run_program m
      [
        Instr.Li (Instr.a5, 0x1111L);
        Instr.Li (Instr.a4, secret_addr);
        Instr.ld Instr.a5 Instr.a4 0L;
        Instr.Halt;
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Machine.Halted);
  (* The architectural destination is unchanged; the physical register
     file still received the transient value. *)
  Alcotest.(check word) "architectural rd preserved" 0x1111L (Machine.get_reg m Instr.a5);
  Alcotest.(check bool) "transient value in phys RF" true (Machine.rf_holds m secret_value)

let test_interpreter_csr_access () =
  let m = machine_with_pmp Config.boom in
  ignore
    (run_program m
       [ Instr.Li (Instr.t0, 0x42L); Instr.Csrw (Csr.Satp, Instr.t0);
         Instr.Csrr (Instr.a0, Csr.Satp); Instr.Halt ]);
  Alcotest.(check word) "csr write/read through program" 0x42L (Machine.get_reg m Instr.a0)

let test_lazy_vs_early_csr_check () =
  let marker = 0xFEED_F00D_0001L in
  let run config =
    let m = machine_with_pmp config in
    Csr.raw_write (Machine.csr m) (Csr.Mhpmcounter 4) marker;
    ignore (run_program m [ Instr.Csrr (Instr.a0, Csr.Mhpmcounter 4); Instr.Halt ]);
    m
  in
  let m_xs = run Config.xiangshan in
  Alcotest.(check word) "architectural register protected on XS" 0L
    (Machine.get_reg m_xs Instr.a0);
  Alcotest.(check bool) "XS lazily wrote the value back transiently" true
    (Machine.rf_holds m_xs marker);
  let m_boom = run Config.boom in
  Alcotest.(check bool) "BOOM early check writes nothing" false
    (Machine.rf_holds m_boom marker)

let test_step_limit () =
  let m = machine_with_pmp Config.boom in
  let prog =
    Program.assemble ~base:0x8000_0000L
      [ Program.Label "spin"; Program.Instr (Instr.Jal "spin") ]
  in
  Alcotest.(check bool) "infinite loop hits the step limit" true
    (Machine.run m prog = Machine.Step_limit)

let test_out_of_program () =
  let m = machine_with_pmp Config.boom in
  Alcotest.(check bool) "running off the end stops" true
    (run_program m [ Instr.Nop ] = Machine.Out_of_program)

(* {1 Machine: context switches, snapshots and flushes} *)

let test_hpc_banking_on_switch () =
  let config =
    Config.with_mitigations Config.xiangshan [ Mitigation.Tag_bpu_hpc ]
  in
  let m = machine_with_pmp config in
  (* Host accumulates some events. *)
  Memory.write (Machine.memory m) ~addr:0x8000_9000L ~size:8 1L;
  ignore (Machine.load m ~vaddr:0x8000_9000L ~size:8 ());
  let host_misses = Hpc.read (Machine.csr m) Hpc.L1d_miss in
  Alcotest.(check bool) "host saw misses" true (Int64.compare host_misses 0L > 0);
  (* Entering another domain swaps in a zeroed bank. *)
  Machine.switch_context m ~to_ctx:(Exec_context.Enclave 0);
  Alcotest.(check int64) "enclave bank starts empty" 0L
    (Hpc.read (Machine.csr m) Hpc.L1d_miss);
  ignore (Machine.load m ~vaddr:0x8000_9100L ~size:8 ());
  (* Returning restores the host's own counts: the enclave's activity is
     invisible. *)
  Machine.switch_context m ~to_ctx:host_s;
  Alcotest.(check int64) "host bank restored unchanged" host_misses
    (Hpc.read (Machine.csr m) Hpc.L1d_miss)

let test_boom_v2_config () =
  Alcotest.(check bool) "v2 is a BOOM" true (Config.boom_v2.Config.kind = Config.Boom);
  Alcotest.(check bool) "smaller LFB" true
    (Config.boom_v2.Config.lfb_entries < Config.boom.Config.lfb_entries);
  Alcotest.(check bool) "same prefetcher behaviour" true
    Config.boom_v2.Config.has_l1_prefetcher;
  Alcotest.(check bool) "same stale LFB behaviour" true
    Config.boom_v2.Config.lfb_retains_stale;
  Alcotest.(check bool) "lookup by name" true
    (Config.of_core_name "boom-v2" <> None)

let test_switch_context_snapshots () =
  let m = machine_with_pmp Config.boom in
  let before = Log.length (Machine.log m) in
  Machine.switch_context m ~to_ctx:Exec_context.Monitor;
  let records = Log.to_list (Machine.log m) in
  let snapshots =
    List.filter
      (fun (r : Log.record) ->
        match r.Log.event with Log.Snapshot _ -> true | _ -> false)
      records
  in
  Alcotest.(check bool) "records appended" true (Log.length (Machine.log m) > before);
  (* One snapshot per structure we model. *)
  Alcotest.(check int) "13 structure snapshots" 13 (List.length snapshots);
  Alcotest.(check bool) "context changed" true
    (Exec_context.equal (Machine.context m) Exec_context.Monitor)

let test_mitigation_flushes_on_switch () =
  let config =
    Config.with_mitigations Config.boom [ Mitigation.Flush_everything ]
  in
  let m = machine_with_pmp config in
  warm_secret_into_l1 m;
  Memory.write (Machine.memory m) ~addr:0x8000_4000L ~size:8 1L;
  ignore (Machine.load m ~vaddr:0x8000_4000L ~size:8 ());
  Alcotest.(check bool) "line cached" true (Machine.l1_contains m ~addr:0x8000_4000L);
  Machine.switch_context m ~to_ctx:Exec_context.Monitor;
  Alcotest.(check bool) "l1 flushed" false (Machine.l1_contains m ~addr:0x8000_4000L);
  Alcotest.(check bool) "secret flushed from L1" false
    (Machine.l1_contains m ~addr:secret_addr);
  (* Flushed data is still architecturally reachable (write-back). *)
  Machine.set_context m host_s;
  let r = Machine.load m ~vaddr:0x8000_4000L ~size:8 () in
  Alcotest.(check word) "data survived the flush" 1L r.Machine.value

let test_evict_line_l2 () =
  let m = machine_with_pmp Config.boom in
  Memory.write (Machine.memory m) ~addr:0x8000_5000L ~size:8 9L;
  ignore (Machine.load m ~vaddr:0x8000_5000L ~size:8 ());
  Machine.evict_line m ~addr:0x8000_5000L;
  Alcotest.(check bool) "in l2 after l1 eviction" true (Machine.l2_contains m ~addr:0x8000_5000L);
  Machine.evict_line_l2 m ~addr:0x8000_5000L;
  Alcotest.(check bool) "gone from l2" false (Machine.l2_contains m ~addr:0x8000_5000L);
  let r = Machine.load m ~vaddr:0x8000_5000L ~size:8 () in
  Alcotest.(check word) "memory still has it" 9L r.Machine.value

let test_memset_region () =
  let m = machine_with_pmp Config.boom in
  Machine.set_context m Exec_context.Monitor;
  Memory.write (Machine.memory m) ~addr:0x8000_6000L ~size:8 0xDEADL;
  Machine.memset_region m ~origin:Log.Memset_destroy ~addr:0x8000_6000L ~size:128L
    ~value:0L;
  let r = Machine.load m ~vaddr:0x8000_6000L ~size:8 () in
  Alcotest.(check word) "zeroed through the hierarchy" 0L r.Machine.value;
  (* The refill dragged the old value through the LFB (stale retention). *)
  Alcotest.(check bool) "old data visible in stale LFB" true (Machine.lfb_holds m 0xDEADL)

let test_wb_buffer_ring () =
  (* Dirty victims rotate through a small write-back ring whose stale
     contents stay visible to the checker. *)
  let m = machine_with_pmp Config.boom in
  let entries = Config.boom.Config.wb_buffer_entries in
  (* Dirty lines in the same set force evictions: with 64 sets x 64B the
     set stride is 4 KiB; 4 ways + victims beyond that evict. *)
  for i = 0 to Config.boom.Config.l1_ways + entries do
    let addr = Int64.add 0x8001_0000L (Int64.of_int (i * 4096)) in
    ignore (Machine.store m ~vaddr:addr ~size:8 ~value:(Int64.of_int (0xAB00 + i)) ());
    Machine.fence m
  done;
  (* The last [entries] evicted dirty lines are observable in the ring. *)
  let wb_writes =
    List.filter
      (fun (r : Log.record) ->
        match r.Log.event with
        | Log.Write { structure = Structure.Wb_buffer; _ } -> true
        | _ -> false)
      (Log.to_list (Machine.log m))
  in
  Alcotest.(check bool) "several wb-buffer writes logged" true
    (List.length wb_writes >= entries);
  (* Distinct ring slots were used. *)
  let slots =
    List.sort_uniq compare
      (List.concat_map
         (fun (r : Log.record) ->
           match r.Log.event with
           | Log.Write { structure = Structure.Wb_buffer; entries; _ } ->
             List.map (fun (e : Log.entry) -> e.Log.slot) entries
           | _ -> [])
         wb_writes)
  in
  Alcotest.(check int) "ring uses all slots" entries (List.length slots)

(* {1 Binary execution through the I-cache} *)

let test_run_binary_matches_program () =
  let prog =
    Program.assemble ~base:0x8000_0000L
      [
        Program.Instr (Instr.Li (5, 0xDEAD_BEEF_0001L));
        Program.Instr (Instr.Li (6, 0x8004_2000L));
        Program.Instr (Instr.sd 5 6 0L);
        Program.Instr (Instr.ld 7 6 0L);
        Program.Label "loop";
        Program.Instr (Instr.Alui (Instr.Add, 8, 8, 1L));
        Program.Instr (Instr.Branch (Instr.Lt, 8, 7, "done"));
        Program.Instr (Instr.Jal "loop");
        Program.Label "done";
        Program.Instr Instr.Halt;
      ]
  in
  let m1 = machine_with_pmp Config.boom in
  let stop1 = Machine.run m1 prog in
  let m2 = machine_with_pmp Config.boom in
  let words = Riscv.Encode.assemble prog in
  (match Machine.run_binary m2 ~base:0x8000_0000L words with
  | Ok stop2 ->
    Alcotest.(check bool) "both halt" true (stop1 = Machine.Halted && stop2 = Machine.Halted)
  | Error msg -> Alcotest.failf "run_binary: %s" msg);
  List.iter
    (fun r ->
      Alcotest.(check word)
        (Printf.sprintf "x%d agrees" r)
        (Machine.get_reg m1 r) (Machine.get_reg m2 r))
    [ 5; 6; 7; 8 ]

let test_run_binary_fills_icache () =
  let m = machine_with_pmp Config.boom in
  let prog = Program.of_instrs ~base:0x8000_0000L [ Instr.Nop; Instr.Nop; Instr.Halt ] in
  Alcotest.(check bool) "icache cold" false (Machine.l1i_contains m ~addr:0x8000_0000L);
  (match Machine.run_binary m ~base:0x8000_0000L (Riscv.Encode.assemble prog) with
  | Ok Machine.Halted -> ()
  | Ok s -> Alcotest.failf "stopped with %s" (Machine.stop_reason_to_string s)
  | Error msg -> Alcotest.failf "run_binary: %s" msg);
  Alcotest.(check bool) "code line resident in icache" true
    (Machine.l1i_contains m ~addr:0x8000_0000L);
  (* The fill was logged against the instruction cache. *)
  let filled =
    List.exists
      (fun (r : Log.record) ->
        match r.Log.event with
        | Log.Write { structure = Structure.L1i_data; _ } -> true
        | _ -> false)
      (Log.to_list (Machine.log m))
  in
  Alcotest.(check bool) "icache fill logged" true filled

let test_run_binary_exec_pmp_fault () =
  let m = machine_with_pmp Config.boom in
  (* The secret region carries no execute permission: fetching from it
     faults before any instruction runs. *)
  let prog = Program.of_instrs ~base:0x8800_0000L [ Instr.Li (5, 1L); Instr.Halt ] in
  (match Machine.run_binary m ~base:0x8800_0000L (Riscv.Encode.assemble prog) with
  | Ok Machine.Fetch_fault -> ()
  | Ok s -> Alcotest.failf "expected fetch fault, got %s" (Machine.stop_reason_to_string s)
  | Error msg -> Alcotest.failf "run_binary: %s" msg);
  Alcotest.(check word) "no instruction executed" 0L (Machine.get_reg m 5)

let test_run_binary_rejects_garbage () =
  let m = machine_with_pmp Config.boom in
  match Machine.run_binary m ~base:0x8000_0000L [| 0xFFFFFFFFl |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage image accepted"

let test_enclave_code_residue_in_icache () =
  (* "Enclave data/code": after an enclave executes from a binary image,
     its code lines remain in the I-cache across the context switch and
     the checker can trace them as residue when the code words are
     treated as secrets. *)
  let m = machine_with_pmp Config.boom in
  Machine.set_context m (Exec_context.Enclave 0);
  let pmp = Machine.pmp m in
  Pmp.set pmp 0
    (Pmp.napot_entry ~base:0x8800_0000L ~size:0x1_0000 ~perm:Pmp.full_access
       ~locked:false);
  let prog = Program.of_instrs ~base:0x8800_0000L [ Instr.Li (5, 7L); Instr.Halt ] in
  (match Machine.run_binary m ~base:0x8800_0000L (Riscv.Encode.assemble prog) with
  | Ok Machine.Halted -> ()
  | _ -> Alcotest.fail "enclave binary should run");
  Machine.switch_context m ~to_ctx:host_s;
  Alcotest.(check bool) "enclave code line survives the switch" true
    (Machine.l1i_contains m ~addr:0x8800_0000L)

(* {1 Properties} *)

let prop_cache_read_after_insert =
  QCheck.Test.make ~name:"cache read-after-insert returns inserted word" ~count:100
    QCheck.(pair (int_bound 1000) int64)
    (fun (line_index, v) ->
      let c = Cache.create ~sets:16 ~ways:2 in
      let addr = Int64.of_int (line_index * 64) in
      ignore (Cache.insert c ~addr (line_of_value v));
      match Cache.read_word c ~addr with Some w -> Int64.equal w v | None -> false)

let prop_stb_forward_matches_store =
  QCheck.Test.make ~name:"store buffer forwards the stored bytes" ~count:100
    QCheck.(pair int64 (int_bound 3))
    (fun (v, k) ->
      let size = 1 lsl k in
      let stb = Store_buffer.create ~entries:4 in
      Store_buffer.push stb (entry 0x1000L 8 v);
      match Store_buffer.forward stb ~addr:0x1000L ~size with
      | Store_buffer.Forwarded got -> Int64.equal got (Word.extract v ~pos:0 ~len:(size * 8))
      | Store_buffer.Partial_conflict | Store_buffer.No_match -> false)

let prop_btb_alias_iff_low_bits_equal =
  QCheck.Test.make ~name:"uBTB aliasing is equality of the low PC bits" ~count:200
    QCheck.(pair (map Int64.abs int64) (map Int64.abs int64))
    (fun (pc1, pc2) ->
      let btb = Btb.create ~entries:1024 ~tag_bits:16 ~ways:1 () in
      (* Covered bits: offset (1) + index (10) + tag (16) = bits [26:0]. *)
      let low pc = Int64.logand pc (Word.mask 27) in
      Btb.aliases btb ~pc1 ~pc2 = Int64.equal (low pc1) (low pc2))

let prop_machine_load_reads_memory =
  QCheck.Test.make ~name:"legal machine loads return memory contents" ~count:50
    QCheck.(pair (int_bound 4000) int64)
    (fun (off, v) ->
      let m = machine_with_pmp Config.boom in
      let addr = Int64.add 0x8001_0000L (Int64.of_int (off * 8)) in
      Memory.write (Machine.memory m) ~addr ~size:8 v;
      let r = Machine.load m ~vaddr:addr ~size:8 () in
      r.Machine.fault = None && Int64.equal r.Machine.value v)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cache_read_after_insert;
      prop_stb_forward_matches_store;
      prop_btb_alias_iff_low_bits_equal;
      prop_machine_load_reads_memory;
    ]

let () =
  Alcotest.run "uarch"
    [
      ( "cache",
        [
          Alcotest.test_case "insert/lookup" `Quick test_cache_insert_lookup;
          Alcotest.test_case "write/dirty/evict" `Quick test_cache_write_dirty_evict;
          Alcotest.test_case "clean eviction" `Quick test_cache_clean_eviction;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "explicit eviction" `Quick test_cache_evict_explicit;
          Alcotest.test_case "snapshot" `Quick test_cache_snapshot;
        ] );
      ( "lfb",
        [
          Alcotest.test_case "stale retention (BOOM)" `Quick test_lfb_stale_retention;
          Alcotest.test_case "zeroing (XiangShan)" `Quick test_lfb_zeroing;
          Alcotest.test_case "slot reuse" `Quick test_lfb_slot_reuse;
          Alcotest.test_case "flush" `Quick test_lfb_flush;
        ] );
      ( "store_buffer",
        [
          Alcotest.test_case "forwarding" `Quick test_stb_forwarding;
          Alcotest.test_case "youngest wins" `Quick test_stb_youngest_wins;
          Alcotest.test_case "drain order" `Quick test_stb_drain_order;
          Alcotest.test_case "capacity" `Quick test_stb_capacity;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "lookup/insert/flush" `Quick test_tlb;
          Alcotest.test_case "eviction" `Quick test_tlb_eviction;
        ] );
      ( "btb",
        [
          Alcotest.test_case "partial tags alias" `Quick test_btb_partial_tags_alias;
          Alcotest.test_case "update/lookup" `Quick test_btb_update_lookup;
          Alcotest.test_case "residue and flush" `Quick test_btb_residue_and_flush;
          Alcotest.test_case "set associativity" `Quick test_btb_set_associative;
          Alcotest.test_case "owner tagging (extension)" `Quick test_btb_owner_tagging;
        ] );
      ( "hpc",
        [
          Alcotest.test_case "bump and read" `Quick test_hpc_bump_read;
          Alcotest.test_case "distinct indices" `Quick test_hpc_distinct_indices;
        ] );
      ("regfile", [ Alcotest.test_case "writeback and wrap" `Quick test_regfile ]);
      ( "lsu",
        [
          Alcotest.test_case "load/store roundtrip" `Quick test_load_store_roundtrip;
          Alcotest.test_case "store-to-load forward" `Quick test_store_to_load_forward;
          Alcotest.test_case "miss/hit latency" `Quick test_load_miss_then_hit_latency;
          Alcotest.test_case "misaligned load" `Quick test_misaligned_load;
          Alcotest.test_case "faulting L1 hit forwards (D4)" `Quick
            test_faulting_load_l1_hit_forwards;
          Alcotest.test_case "faulting miss fills LFB on BOOM" `Quick
            test_faulting_miss_boom_fills_lfb;
          Alcotest.test_case "faulting miss fake hit on XS" `Quick
            test_faulting_miss_xs_fake_hit;
          Alcotest.test_case "store-buffer forward on fault (D8)" `Quick
            test_faulting_load_stb_forward_xs_only;
          Alcotest.test_case "clear-illegal-data-returns" `Quick
            test_clear_illegal_data_returns;
          Alcotest.test_case "faulting store has no effect" `Quick
            test_store_fault_no_side_effect;
          Alcotest.test_case "prefetcher skips permission checks (D1)" `Quick
            test_prefetcher_no_permission_check;
          Alcotest.test_case "no prefetcher on XS" `Quick test_no_prefetcher_on_xs;
        ] );
      ( "translation",
        [
          Alcotest.test_case "translated load + TLB" `Quick test_translated_load;
          Alcotest.test_case "unmapped page faults" `Quick test_unmapped_vaddr_page_faults;
          Alcotest.test_case "hijacked satp (D2)" `Quick test_hijacked_satp_boom_vs_xs;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "alu" `Quick test_interpreter_alu;
          Alcotest.test_case "x0 hardwired" `Quick test_interpreter_x0_hardwired;
          Alcotest.test_case "branch loop" `Quick test_interpreter_branch_loop;
          Alcotest.test_case "faulting load skipped" `Quick
            test_interpreter_faulting_load_skipped;
          Alcotest.test_case "csr access" `Quick test_interpreter_csr_access;
          Alcotest.test_case "lazy vs early CSR check (M1)" `Quick
            test_lazy_vs_early_csr_check;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "out of program" `Quick test_out_of_program;
        ] );
      ( "wb_buffer",
        [ Alcotest.test_case "victim ring" `Quick test_wb_buffer_ring ] );
      ( "binary",
        [
          Alcotest.test_case "binary matches Program semantics" `Quick
            test_run_binary_matches_program;
          Alcotest.test_case "fills the icache" `Quick test_run_binary_fills_icache;
          Alcotest.test_case "PMP execute fault" `Quick test_run_binary_exec_pmp_fault;
          Alcotest.test_case "rejects garbage" `Quick test_run_binary_rejects_garbage;
          Alcotest.test_case "enclave code residue" `Quick
            test_enclave_code_residue_in_icache;
        ] );
      ( "context",
        [
          Alcotest.test_case "switch snapshots" `Quick test_switch_context_snapshots;
          Alcotest.test_case "mitigation flushes" `Quick test_mitigation_flushes_on_switch;
          Alcotest.test_case "HPC banking under tagging" `Quick test_hpc_banking_on_switch;
          Alcotest.test_case "BOOM v2.3 configuration" `Quick test_boom_v2_config;
          Alcotest.test_case "l2 eviction" `Quick test_evict_line_l2;
          Alcotest.test_case "memset region" `Quick test_memset_region;
        ] );
      ("properties", properties);
    ]
