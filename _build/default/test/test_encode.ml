(* Tests for the RV64I binary encoder/assembler and decoder. *)

open Riscv
module Machine = Uarch.Machine
module Config = Uarch.Config
module Exec_context = Simlog.Exec_context

let word = Alcotest.testable Word.pp Int64.equal

(* {1 Single-instruction round trips} *)

let roundtrip_plain instr =
  match Decode.decode ~pc:0x8000_0000L (Encode.encode_at ~pc:0x8000_0000L ~target:None instr) with
  | Decode.Plain i -> i
  | d -> Alcotest.failf "expected plain decode, got %a" Decode.pp_decoded d

let test_plain_roundtrips () =
  List.iter
    (fun instr ->
      Alcotest.(check string)
        (Instr.to_string instr)
        (Instr.to_string instr)
        (Instr.to_string (roundtrip_plain instr)))
    [
      Instr.Nop;
      Instr.Ecall;
      Instr.Halt;
      Instr.Fence;
      Instr.Alu (Instr.Add, 10, 11, 12);
      Instr.Alu (Instr.Sub, 5, 6, 7);
      Instr.Alu (Instr.Xor, 15, 0, 31);
      Instr.Alu (Instr.Sll, 8, 9, 10);
      Instr.Alu (Instr.Srl, 8, 9, 10);
      Instr.Alu (Instr.Or, 1, 2, 3);
      Instr.Alu (Instr.And, 1, 2, 3);
      Instr.Alui (Instr.Add, 10, 11, 42L);
      Instr.Alui (Instr.Add, 10, 11, -42L);
      Instr.Alui (Instr.Sll, 10, 11, 11L);
      Instr.Alui (Instr.Srl, 10, 11, 63L);
      Instr.Alui (Instr.Or, 10, 11, 0x7FFL);
      Instr.Alui (Instr.And, 10, 11, -1L);
      Instr.Load { width = Instr.Byte; rd = 5; base = 6; offset = 8L };
      Instr.Load { width = Instr.Half; rd = 5; base = 6; offset = -8L };
      Instr.Load { width = Instr.Word_; rd = 5; base = 6; offset = 0L };
      Instr.Load { width = Instr.Double; rd = 5; base = 6; offset = 2040L };
      Instr.Store { width = Instr.Byte; rs = 5; base = 6; offset = 1L };
      Instr.Store { width = Instr.Double; rs = 5; base = 6; offset = -2048L };
      Instr.Csrr (10, Csr.Satp);
      Instr.Csrr (11, Csr.Hpmcounter 4);
      Instr.Csrr (12, Csr.Mhpmcounter 17);
      Instr.Csrw (Csr.Satp, 10);
      Instr.Csrw (Csr.Pmpaddr 15, 3);
    ]

let test_branch_offsets () =
  List.iter
    (fun offset ->
      let pc = 0x8000_1000L in
      let target = Int64.add pc offset in
      let w =
        Encode.encode_at ~pc ~target:(Some target)
          (Instr.Branch (Instr.Ne, 5, 6, "x"))
      in
      match Decode.decode ~pc w with
      | Decode.Branch_to (Instr.Ne, 5, 6, t) -> Alcotest.(check word) "target" target t
      | d -> Alcotest.failf "bad decode: %a" Decode.pp_decoded d)
    [ 4L; -4L; 8L; 4094L; -4096L; 100L; -256L ]

let test_jal_offsets () =
  List.iter
    (fun offset ->
      let pc = 0x8000_1000L in
      let target = Int64.add pc offset in
      let w = Encode.encode_at ~pc ~target:(Some target) (Instr.Jal "x") in
      match Decode.decode ~pc w with
      | Decode.Jal_to t -> Alcotest.(check word) "target" target t
      | d -> Alcotest.failf "bad decode: %a" Decode.pp_decoded d)
    [ 4L; -4L; 0x7FFFEL; -0x80000L; 2048L ]

let test_out_of_range_rejected () =
  let pc = 0x8000_0000L in
  Alcotest.check_raises "branch too far"
    (Encode.Encode_error "branch offset 4096 out of range") (fun () ->
      ignore
        (Encode.encode_at ~pc ~target:(Some (Int64.add pc 4096L))
           (Instr.Branch (Instr.Eq, 0, 0, "x"))));
  (try
     ignore
       (Encode.encode_at ~pc ~target:None
          (Instr.Load { width = Instr.Double; rd = 1; base = 2; offset = 4096L }));
     Alcotest.fail "load offset should be rejected"
   with Encode.Encode_error _ -> ())

let test_known_encodings () =
  (* Golden values from the RISC-V specification. *)
  let enc i = Encode.encode_at ~pc:0L ~target:None i in
  Alcotest.(check int32) "nop = addi x0,x0,0" 0x00000013l (enc Instr.Nop);
  Alcotest.(check int32) "ecall" 0x00000073l (enc Instr.Ecall);
  Alcotest.(check int32) "ebreak (halt)" 0x00100073l (enc Instr.Halt);
  (* add x10, x11, x12 = 0x00C58533 *)
  Alcotest.(check int32) "add x10,x11,x12" 0x00C58533l (enc (Instr.Alu (Instr.Add, 10, 11, 12)));
  (* ld x15, 8(x14) = imm=8 rs1=14 funct3=3 rd=15 opcode=3 *)
  Alcotest.(check int32) "ld x15,8(x14)" 0x00873783l
    (enc (Instr.Load { width = Instr.Double; rd = 15; base = 14; offset = 8L }));
  (* sd x15, 8(x14) *)
  Alcotest.(check int32) "sd x15,8(x14)" 0x00F73423l
    (enc (Instr.Store { width = Instr.Double; rs = 15; base = 14; offset = 8L }))

(* {1 Li lowering} *)

(* Evaluate an Alui-only sequence with a two-register machine. *)
let eval_sequence instrs =
  let regs = Array.make 32 0L in
  List.iter
    (fun instr ->
      match (instr : Instr.t) with
      | Instr.Alui (op, rd, rs1, imm) ->
        let a = if rs1 = 0 then 0L else regs.(rs1) in
        regs.(rd) <-
          (match op with
          | Instr.Add -> Int64.add a imm
          | Instr.Or -> Int64.logor a imm
          | Instr.Sll -> Int64.shift_left a (Int64.to_int (Int64.logand imm 63L))
          | _ -> Alcotest.fail "unexpected op in lowering")
      | _ -> Alcotest.fail "unexpected instruction in lowering")
    instrs;
  regs.(10)

let test_li_lowering_values () =
  List.iter
    (fun v ->
      Alcotest.(check word) (Printf.sprintf "li %Lx" v) v
        (eval_sequence (Encode.lower_li ~rd:10 v)))
    [
      0L; 1L; -1L; 42L; -42L; 2047L; -2048L; 2048L; 0xDEADBEEFL;
      0x8000_0000L; -0x8000_0000L; 0x7FFF_FFFF_FFFF_FFFFL;
      Int64.min_int; 0x1234_5678_9ABC_DEF0L; 0x8800_8000L;
    ]

let test_li_lowering_compact () =
  Alcotest.(check int) "small constants are one instruction" 1
    (List.length (Encode.lower_li ~rd:10 42L));
  Alcotest.(check int) "lowered length matches" 1 (Encode.lowered_length (Instr.Li (10, 42L)));
  Alcotest.(check int) "non-pseudo length is 1" 1 (Encode.lowered_length Instr.Nop)

let prop_li_lowering =
  QCheck.Test.make ~name:"li materialises any 64-bit constant" ~count:300 QCheck.int64
    (fun v -> Int64.equal v (eval_sequence (Encode.lower_li ~rd:10 v)))

(* {1 Whole-program assembly} *)

let sample_program =
  Program.assemble ~base:0x8000_0000L
    [
      Program.Instr (Instr.Li (5, 0xDEAD_BEEF_CAFEL));
      Program.Instr (Instr.Li (6, 0x8004_0000L));
      Program.Instr (Instr.sd 5 6 0L);
      Program.Label "loop";
      Program.Instr (Instr.Alui (Instr.Add, 7, 7, 1L));
      Program.Instr (Instr.Branch (Instr.Lt, 7, 5, "loop"));
      Program.Instr (Instr.ld 8 6 0L);
      Program.Instr (Instr.Jal "end");
      Program.Instr Instr.Nop;
      Program.Label "end";
      Program.Instr Instr.Halt;
    ]

let test_assemble_relocation () =
  (* Lowering the two Li pseudos stretches the layout; the backward
     branch and forward jump must still resolve. *)
  let words = Encode.assemble sample_program in
  Alcotest.(check bool) "lowering stretched the code" true
    (Array.length words > Program.length sample_program);
  match Decode.to_program ~base:0x8000_0000L words with
  | Error msg -> Alcotest.failf "reconstruction failed: %s" msg
  | Ok prog2 ->
    (* Word-level fixpoint: re-assembling the reconstruction is identical. *)
    let words2 = Encode.assemble prog2 in
    Alcotest.(check int) "same length" (Array.length words) (Array.length words2);
    Array.iteri
      (fun i w ->
        Alcotest.(check int32) (Printf.sprintf "word %d" i) w words2.(i))
      words

let run_on_machine prog =
  let m = Machine.create Config.boom in
  Pmp.set (Machine.pmp m) 0
    (Pmp.napot_entry ~base:0x8000_0000L ~size:0x8000_0000 ~perm:Pmp.full_access
       ~locked:false);
  Machine.set_context m (Exec_context.Host Priv.Supervisor);
  let stop = Machine.run m prog in
  Machine.fence m;
  (m, stop)

let test_reconstruction_preserves_semantics () =
  (* A program with small (non-stretching) constants runs identically
     before and after an encode/decode trip. *)
  let prog =
    Program.assemble ~base:0x8000_0000L
      [
        Program.Instr (Instr.Li (5, 100L));
        Program.Instr (Instr.Li (6, 0x8004_0000L));
        Program.Instr (Instr.sd 5 6 0L);
        Program.Instr (Instr.ld 7 6 0L);
        Program.Instr (Instr.Alu (Instr.Add, 8, 7, 5));
        Program.Label "skip";
        Program.Instr (Instr.Branch (Instr.Eq, 0, 0, "end"));
        Program.Instr (Instr.Jal "skip");
        Program.Label "end";
        Program.Instr Instr.Halt;
      ]
  in
  let words = Encode.assemble prog in
  match Decode.to_program ~base:0x8000_0000L words with
  | Error msg -> Alcotest.failf "reconstruction failed: %s" msg
  | Ok prog2 ->
    let m1, stop1 = run_on_machine prog in
    let m2, stop2 = run_on_machine prog2 in
    Alcotest.(check bool) "both halt" true
      (stop1 = Machine.Halted && stop2 = Machine.Halted);
    List.iter
      (fun r ->
        Alcotest.(check word)
          (Printf.sprintf "x%d agrees" r)
          (Machine.get_reg m1 r) (Machine.get_reg m2 r))
      [ 5; 6; 7; 8 ]

let test_decode_rejects_garbage () =
  (match Decode.decode ~pc:0L 0xFFFFFFFFl with
  | Decode.Unknown _ -> ()
  | d -> Alcotest.failf "garbage decoded as %a" Decode.pp_decoded d);
  match Decode.to_program ~base:0L [| 0xFFFFFFFFl |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage image accepted"

let prop_program_word_fixpoint =
  (* Random straight-line programs: assemble -> decode -> assemble is a
     fixpoint at the word level. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (frequency
           [
             (3, map2 (fun r v -> Instr.Li (5 + (r mod 10), Int64.of_int v)) (int_bound 9) small_signed_int);
             ( 2,
               map2
                 (fun rd (rs1, rs2) -> Instr.Alu (Instr.Add, 5 + (rd mod 10), 5 + (rs1 mod 10), 5 + (rs2 mod 10)))
                 (int_bound 9) (pair (int_bound 9) (int_bound 9)) );
             (1, return Instr.Nop);
             ( 1,
               map (fun off -> Instr.Load { width = Instr.Double; rd = 7; base = 6; offset = Int64.of_int (off * 8) })
                 (int_bound 15) );
           ]))
  in
  QCheck.Test.make ~name:"assemble/decode/assemble word fixpoint" ~count:100
    (QCheck.make gen)
    (fun instrs ->
      let prog = Program.of_instrs ~base:0x8000_0000L (instrs @ [ Instr.Halt ]) in
      let words = Encode.assemble prog in
      match Decode.to_program ~base:0x8000_0000L words with
      | Error _ -> false
      | Ok prog2 ->
        let words2 = Encode.assemble prog2 in
        words = words2)

let () =
  Alcotest.run "encode"
    [
      ( "instructions",
        [
          Alcotest.test_case "plain round trips" `Quick test_plain_roundtrips;
          Alcotest.test_case "branch offsets" `Quick test_branch_offsets;
          Alcotest.test_case "jal offsets" `Quick test_jal_offsets;
          Alcotest.test_case "out-of-range rejected" `Quick test_out_of_range_rejected;
          Alcotest.test_case "golden encodings" `Quick test_known_encodings;
        ] );
      ( "li-lowering",
        [
          Alcotest.test_case "constant values" `Quick test_li_lowering_values;
          Alcotest.test_case "compactness" `Quick test_li_lowering_compact;
          QCheck_alcotest.to_alcotest prop_li_lowering;
        ] );
      ( "programs",
        [
          Alcotest.test_case "relocation across lowering" `Quick test_assemble_relocation;
          Alcotest.test_case "semantics preserved" `Quick
            test_reconstruction_preserves_semantics;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_program_word_fixpoint;
        ] );
    ]
