(* Tests for the netlist substrate and the storage-discovery pass. *)

open Netlist

let test_cell_state_bits () =
  Alcotest.(check int) "register" 64 (Cell.state_bits (Cell.Register { name = "r"; width = 64 }));
  Alcotest.(check int) "memory" (512 * 4)
    (Cell.state_bits (Cell.Memory { name = "m"; width = 512; depth = 4 }));
  Alcotest.(check int) "logic" 0 (Cell.state_bits (Cell.Logic { name = "l" }));
  Alcotest.(check bool) "logic is not storage" false (Cell.is_storage (Cell.Logic { name = "l" }));
  Alcotest.(check bool) "memory is storage" true
    (Cell.is_storage (Cell.Memory { name = "m"; width = 1; depth = 1 }))

let tiny_design () =
  Design.create ~top:"top"
    [
      {
        Design.module_name = "top";
        cells = [ Cell.Register { name = "pc"; width = 40 } ];
        instances = [ ("core0", "core"); ("core1", "core") ];
      };
      {
        Design.module_name = "core";
        cells =
          [
            Cell.Memory { name = "rf"; width = 64; depth = 32 };
            Cell.Logic { name = "alu" };
          ];
        instances = [ ("dc", "dcache") ];
      };
      {
        Design.module_name = "dcache";
        cells = [ Cell.Memory { name = "data"; width = 512; depth = 64 } ];
        instances = [];
      };
    ]

let test_design_hierarchy () =
  let d = tiny_design () in
  Alcotest.(check int) "module count" 3 (Design.module_count d);
  Alcotest.(check string) "top" "top" (Design.top d).Design.module_name;
  Alcotest.(check bool) "find existing" true (Design.find_module d "dcache" <> None);
  Alcotest.(check bool) "find missing" true (Design.find_module d "nope" = None);
  let paths = ref [] in
  Design.iter_instances d (fun ~path ~hw_module:_ -> paths := path :: !paths);
  let paths = List.sort compare !paths in
  Alcotest.(check (list string)) "instance paths"
    [ "top"; "top.core0"; "top.core0.dc"; "top.core1"; "top.core1.dc" ]
    paths

let test_design_errors () =
  Alcotest.check_raises "missing module"
    (Invalid_argument "Design.create: missing module ghost") (fun () ->
      ignore
        (Design.create ~top:"t"
           [ { Design.module_name = "t"; cells = []; instances = [ ("g", "ghost") ] } ]));
  Alcotest.check_raises "cyclic hierarchy"
    (Invalid_argument "Design.create: cyclic hierarchy at a") (fun () ->
      ignore
        (Design.create ~top:"a"
           [
             { Design.module_name = "a"; cells = []; instances = [ ("b", "b") ] };
             { Design.module_name = "b"; cells = []; instances = [ ("a", "a") ] };
           ]))

let test_memory_pass () =
  let d = tiny_design () in
  let elements = Memory_pass.run d in
  (* pc + 2x (rf + dcache.data); the ALU carries no state. *)
  Alcotest.(check int) "element count" 5 (List.length elements);
  let total = Memory_pass.total_bits d in
  Alcotest.(check int) "total bits" (40 + (2 * ((64 * 32) + (512 * 64)))) total;
  let rf_elements = Memory_pass.find d ~substring:"rf" in
  Alcotest.(check int) "rf in both cores" 2 (List.length rf_elements);
  let dc = Memory_pass.find d ~substring:"core0.dc" in
  Alcotest.(check int) "path filter" 1 (List.length dc)

let test_boom_design () =
  let elements = Memory_pass.run Designs.boom in
  Alcotest.(check bool) "has lfb" true
    (List.exists (fun e -> Cell.name e.Memory_pass.cell = "lfb") elements);
  Alcotest.(check bool) "has prefetcher state" true
    (Memory_pass.find Designs.boom ~substring:"prefetcher" <> []);
  Alcotest.(check bool) "has hpm counters" true
    (Memory_pass.find Designs.boom ~substring:"hpm_counters" <> []);
  (* The LFB is 4 entries of a full line. *)
  (match Memory_pass.find Designs.boom ~substring:"lfb" with
  | [ e ] -> Alcotest.(check int) "lfb bits" (512 * 4) e.Memory_pass.bits
  | l -> Alcotest.failf "expected one lfb element, got %d" (List.length l))

let test_xiangshan_design () =
  let d = Designs.xiangshan in
  Alcotest.(check bool) "has sbuffer" true (Memory_pass.find d ~substring:"sbuffer" <> []);
  Alcotest.(check bool) "has ubtb" true (Memory_pass.find d ~substring:"ubtb" <> []);
  Alcotest.(check bool) "no l1 prefetcher" true
    (Memory_pass.find d ~substring:"prefetcher" = []);
  (* The uBTB has 1024 entries, matching the core configuration. *)
  (match Memory_pass.find d ~substring:"ubtb" with
  | [ e ] -> (
    match e.Memory_pass.cell with
    | Cell.Memory { depth; _ } -> Alcotest.(check int) "ubtb depth" 1024 depth
    | _ -> Alcotest.fail "ubtb should be a memory")
  | l -> Alcotest.failf "expected one ubtb element, got %d" (List.length l))

let test_of_core_name () =
  Alcotest.(check bool) "boom" true (Designs.of_core_name "boom" <> None);
  Alcotest.(check bool) "xiangshan" true (Designs.of_core_name "xiangshan" <> None);
  Alcotest.(check bool) "unknown" true (Designs.of_core_name "rocket" = None)

(* {1 Verilog emission} *)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_verilog_module () =
  let m =
    {
      Design.module_name = "dcache";
      cells =
        [
          Cell.Memory { name = "data"; width = 512; depth = 64 };
          Cell.Register { name = "state"; width = 4 };
          Cell.Logic { name = "hit_logic" };
        ];
      instances = [ ("lfb0", "lfb") ];
    }
  in
  let v = Verilog_gen.module_to_string m in
  Alcotest.(check bool) "module header" true (contains v "module dcache(");
  Alcotest.(check bool) "memory as 2d reg" true (contains v "reg [511:0] data [0:63];");
  Alcotest.(check bool) "register vector" true (contains v "reg [3:0] state;");
  Alcotest.(check bool) "logic is a comment" true (contains v "/* combinational: hit_logic */");
  Alcotest.(check bool) "instance wired" true
    (contains v "lfb lfb0 (.clock(clock), .reset(reset));");
  Alcotest.(check bool) "storage marker on memories" true
    (contains v Verilog_gen.storage_marker);
  Alcotest.(check bool) "endmodule" true (contains v "endmodule")

let count_occurrences hay needle =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_verilog_whole_design () =
  List.iter
    (fun design ->
      let v = Verilog_gen.design_to_string design in
      Alcotest.(check int) "one module body per design module"
        (Design.module_count design)
        (count_occurrences v "endmodule");
      (* Every storage cell of every (distinct) module carries the
         instrumentation marker; shared modules are emitted once even if
         instantiated several times. *)
      let distinct_storage_cells =
        List.length
          (List.sort_uniq compare
             (List.map (fun e -> Cell.name e.Memory_pass.cell) (Memory_pass.run design)))
      in
      Alcotest.(check int) "marker per distinct storage cell"
        distinct_storage_cells
        (count_occurrences v Verilog_gen.storage_marker))
    [ Designs.boom; Designs.xiangshan ]

let prop_total_bits_is_sum =
  QCheck.Test.make ~name:"total bits equals sum over elements" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 10) (pair (int_range 1 64) (int_range 1 128)))
    (fun cells ->
      let d =
        Design.create ~top:"t"
          [
            {
              Design.module_name = "t";
              cells =
                List.mapi
                  (fun i (w, dep) ->
                    Cell.Memory { name = Printf.sprintf "m%d" i; width = w; depth = dep })
                  cells;
              instances = [];
            };
          ]
      in
      Memory_pass.total_bits d
      = List.fold_left (fun acc (w, dep) -> acc + (w * dep)) 0 cells)

let () =
  Alcotest.run "netlist"
    [
      ("cell", [ Alcotest.test_case "state bits" `Quick test_cell_state_bits ]);
      ( "design",
        [
          Alcotest.test_case "hierarchy walk" `Quick test_design_hierarchy;
          Alcotest.test_case "construction errors" `Quick test_design_errors;
        ] );
      ( "memory_pass",
        [
          Alcotest.test_case "discovery" `Quick test_memory_pass;
          Alcotest.test_case "boom storage elements" `Quick test_boom_design;
          Alcotest.test_case "xiangshan storage elements" `Quick test_xiangshan_design;
          Alcotest.test_case "core lookup" `Quick test_of_core_name;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "module skeleton" `Quick test_verilog_module;
          Alcotest.test_case "whole designs" `Quick test_verilog_whole_design;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_total_bits_is_sum ]);
    ]
