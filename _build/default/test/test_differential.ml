(* Differential testing of the instrumented machine.

   A pure architectural reference interpreter (registers + flat memory,
   no caches, no transient effects) executes the same randomly generated
   programs as the full machine.  For legal programs the two must agree
   on every architectural register and every written memory location —
   the microarchitectural machinery (caches, store buffer, LFB, branch
   predictors) must never change architectural results. *)

open Riscv
module Machine = Uarch.Machine
module Config = Uarch.Config
module Exec_context = Simlog.Exec_context

(* {1 Reference interpreter} *)

module Ref_model = struct
  type t = { regs : Word.t array; mem : Memory.t }

  let create () = { regs = Array.make 32 0L; mem = Memory.create () }
  let get t r = if r = 0 then 0L else t.regs.(r)
  let set t r v = if r <> 0 then t.regs.(r) <- v

  let eval_alu op a b =
    match (op : Instr.alu_op) with
    | Instr.Add -> Int64.add a b
    | Instr.Sub -> Int64.sub a b
    | Instr.Xor -> Int64.logxor a b
    | Instr.Or -> Int64.logor a b
    | Instr.And -> Int64.logand a b
    | Instr.Sll -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
    | Instr.Srl -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))

  let eval_cond c a b =
    match (c : Instr.cond) with
    | Instr.Eq -> Int64.equal a b
    | Instr.Ne -> not (Int64.equal a b)
    | Instr.Lt -> Int64.compare a b < 0
    | Instr.Ge -> Int64.compare a b >= 0

  let run t prog =
    let pc = ref (Program.base prog) in
    let steps = ref 0 in
    let running = ref true in
    while !running && !steps < 10_000 do
      incr steps;
      match Program.fetch prog ~pc:!pc with
      | None -> running := false
      | Some instr -> (
        let next = Int64.add !pc 4L in
        match instr with
        | Instr.Halt -> running := false
        | Instr.Nop | Instr.Fence | Instr.Ecall ->
          pc := next
        | Instr.Li (rd, v) ->
          set t rd v;
          pc := next
        | Instr.Alu (op, rd, rs1, rs2) ->
          set t rd (eval_alu op (get t rs1) (get t rs2));
          pc := next
        | Instr.Alui (op, rd, rs1, imm) ->
          set t rd (eval_alu op (get t rs1) imm);
          pc := next
        | Instr.Load { width; rd; base; offset } ->
          let addr = Int64.add (get t base) offset in
          set t rd (Memory.read t.mem ~addr ~size:(Instr.width_bytes width));
          pc := next
        | Instr.Store { width; rs; base; offset } ->
          let addr = Int64.add (get t base) offset in
          Memory.write t.mem ~addr ~size:(Instr.width_bytes width) (get t rs);
          pc := next
        | Instr.Branch (c, rs1, rs2, label) ->
          pc := (if eval_cond c (get t rs1) (get t rs2) then Program.resolve prog label else next)
        | Instr.Jal label -> pc := Program.resolve prog label
        | Instr.Csrr (rd, _) ->
          (* CSRs are excluded from generated programs; treat as zero. *)
          set t rd 0L;
          pc := next
        | Instr.Csrw (_, _) -> pc := next)
    done;
    t
end

(* {1 Random program generation}

   Programs are straight-line sequences of register/memory operations
   plus skip-style forward branches (always resolvable, always
   terminating).  Addresses stay inside an aligned host scratch window
   so every access is legal. *)

type op =
  | Gen_li of int * int64
  | Gen_alu of Instr.alu_op * int * int * int
  | Gen_alui of Instr.alu_op * int * int * int64
  | Gen_load of int * int * int  (* width log2, rd, slot *)
  | Gen_store of int * int * int  (* width log2, rs, slot *)
  | Gen_skip_branch of Instr.cond * int * int  (* cond, rs1, rs2 *)

let scratch_base = 0x8004_0000L
let scratch_slots = 64

(* Registers x5..x15 participate; x0 is included as a source. *)
let gen_reg = QCheck.Gen.int_range 5 15
let gen_src = QCheck.Gen.(oneof [ return 0; int_range 5 15 ])

let gen_op =
  let open QCheck.Gen in
  frequency
    [
      (3, map2 (fun r v -> Gen_li (r, v)) gen_reg (map Int64.of_int small_signed_int));
      ( 3,
        map2
          (fun (op, rd) (rs1, rs2) -> Gen_alu (op, rd, rs1, rs2))
          (pair (oneofl Instr.[ Add; Sub; Xor; Or; And ]) gen_reg)
          (pair gen_src gen_src) );
      ( 2,
        map2
          (fun (op, rd) (rs1, imm) -> Gen_alui (op, rd, rs1, Int64.of_int imm))
          (pair (oneofl Instr.[ Add; Xor; And; Sll; Srl ]) gen_reg)
          (pair gen_src (int_bound 63)) );
      (3, map2 (fun (w, rd) slot -> Gen_load (w, rd, slot)) (pair (int_bound 3) gen_reg) (int_bound (scratch_slots - 1)));
      (3, map2 (fun (w, rs) slot -> Gen_store (w, rs, slot)) (pair (int_bound 3) gen_src) (int_bound (scratch_slots - 1)));
      ( 1,
        map2
          (fun (c, rs1) rs2 -> Gen_skip_branch (c, rs1, rs2))
          (pair (oneofl Instr.[ Eq; Ne; Lt; Ge ]) gen_src)
          gen_src );
    ]

let gen_program = QCheck.Gen.(list_size (int_range 1 60) gen_op)

(* Render the op list to a program.  The address register x31 is
   reserved for memory addressing; skip branches jump over exactly one
   Nop. *)
let render ops =
  let elements = ref [] in
  let label_count = ref 0 in
  let emit e = elements := e :: !elements in
  List.iter
    (fun op ->
      match op with
      | Gen_li (r, v) -> emit (Program.Instr (Instr.Li (r, v)))
      | Gen_alu (op, rd, rs1, rs2) -> emit (Program.Instr (Instr.Alu (op, rd, rs1, rs2)))
      | Gen_alui (op, rd, rs1, imm) -> emit (Program.Instr (Instr.Alui (op, rd, rs1, imm)))
      | Gen_load (w, rd, slot) ->
        let width = List.nth [ Instr.Byte; Instr.Half; Instr.Word_; Instr.Double ] w in
        emit (Program.Instr (Instr.Li (31, Int64.add scratch_base (Int64.of_int (slot * 8)))));
        emit (Program.Instr (Instr.Load { width; rd; base = 31; offset = 0L }))
      | Gen_store (w, rs, slot) ->
        let width = List.nth [ Instr.Byte; Instr.Half; Instr.Word_; Instr.Double ] w in
        emit (Program.Instr (Instr.Li (31, Int64.add scratch_base (Int64.of_int (slot * 8)))));
        emit (Program.Instr (Instr.Store { width; rs; base = 31; offset = 0L }))
      | Gen_skip_branch (c, rs1, rs2) ->
        let label = Printf.sprintf "skip%d" !label_count in
        incr label_count;
        emit (Program.Instr (Instr.Branch (c, rs1, rs2, label)));
        emit (Program.Instr Instr.Nop);
        emit (Program.Label label))
    ops;
  emit (Program.Instr Instr.Halt);
  Program.assemble ~base:0x8000_0000L (List.rev !elements)

(* {1 The differential property} *)

let machine_for config =
  let m = Machine.create config in
  (* Allow-all PMP: generated programs are legal by construction. *)
  Pmp.set (Machine.pmp m) 0
    (Pmp.napot_entry ~base:0x8000_0000L ~size:0x8000_0000 ~perm:Pmp.full_access
       ~locked:false);
  Machine.set_context m (Exec_context.Host Priv.Supervisor);
  m

let agree config ops =
  let prog = render ops in
  let reference = Ref_model.run (Ref_model.create ()) prog in
  let m = machine_for config in
  let stop = Machine.run m prog in
  (* Drain pending stores so memory comparison sees committed state. *)
  Machine.fence m;
  stop = Machine.Halted
  && List.for_all
       (fun r -> Int64.equal (Ref_model.get reference r) (Machine.get_reg m r))
       (List.init 31 (fun i -> i + 1))
  && List.for_all
       (fun slot ->
         let addr = Int64.add scratch_base (Int64.of_int (slot * 8)) in
         let expected = Memory.read reference.Ref_model.mem ~addr ~size:8 in
         let got = (Machine.load m ~vaddr:addr ~size:8 ()).Machine.value in
         Int64.equal expected got)
       (List.init scratch_slots (fun i -> i))

(* The same property through the binary path: the program is assembled
   to machine code, loaded into memory, and executed by fetching through
   the I-cache and decoding each word — exercising the encoder, the
   decoder and the fetch path on random input. *)
let agree_binary config ops =
  let prog = render ops in
  let reference = Ref_model.run (Ref_model.create ()) prog in
  let m = machine_for config in
  let words = Riscv.Encode.assemble prog in
  match Machine.run_binary m ~base:0x8000_0000L words with
  | Error _ -> false
  | Ok stop ->
    Machine.fence m;
    stop = Machine.Halted
    && List.for_all
         (fun r -> Int64.equal (Ref_model.get reference r) (Machine.get_reg m r))
         (List.init 31 (fun i -> i + 1))
    && List.for_all
         (fun slot ->
           let addr = Int64.add scratch_base (Int64.of_int (slot * 8)) in
           let expected = Memory.read reference.Ref_model.mem ~addr ~size:8 in
           let got = (Machine.load m ~vaddr:addr ~size:8 ()).Machine.value in
           Int64.equal expected got)
         (List.init scratch_slots (fun i -> i))

let differential_test config name =
  QCheck.Test.make ~name ~count:150
    (QCheck.make ~print:(fun ops -> Format.asprintf "%a" Program.pp (render ops)) gen_program)
    (fun ops -> agree config ops)

(* A few directed regression programs on top of the random ones. *)
let binary_differential_test config name =
  QCheck.Test.make ~name ~count:100
    (QCheck.make ~print:(fun ops -> Format.asprintf "%a" Program.pp (render ops)) gen_program)
    (fun ops -> agree_binary config ops)

let directed_cases =
  [
    ( "store-load through the buffer",
      [ Gen_li (5, 123L); Gen_store (3, 5, 0); Gen_load (3, 6, 0) ] );
    ( "narrow store preserves neighbours",
      [ Gen_li (5, -1L); Gen_store (3, 5, 1); Gen_li (6, 0xAAL); Gen_store (0, 6, 1);
        Gen_load (3, 7, 1) ] );
    ( "branch skips exactly one instruction",
      [ Gen_li (5, 1L); Gen_skip_branch (Instr.Ne, 5, 0); Gen_li (6, 7L);
        Gen_skip_branch (Instr.Eq, 5, 0); Gen_load (3, 8, 2) ] );
    ("alu chain", [ Gen_li (5, 3L); Gen_alui (Instr.Sll, 6, 5, 4L); Gen_alu (Instr.Sub, 7, 6, 5) ]);
  ]

let directed_tests config =
  List.map
    (fun (name, ops) ->
      Alcotest.test_case name `Quick (fun () ->
          Alcotest.(check bool) name true (agree config ops)))
    directed_cases

let () =
  Alcotest.run "differential"
    [
      ( "random-programs",
        [
          QCheck_alcotest.to_alcotest
            (differential_test Config.boom "machine == reference (BOOM)");
          QCheck_alcotest.to_alcotest
            (differential_test Config.xiangshan "machine == reference (XiangShan)");
          QCheck_alcotest.to_alcotest
            (differential_test Config.boom_v2 "machine == reference (BOOM v2.3)");
        ] );
      ( "binary-path",
        [
          QCheck_alcotest.to_alcotest
            (binary_differential_test Config.boom
               "assembled binary == reference (BOOM)");
          QCheck_alcotest.to_alcotest
            (binary_differential_test Config.xiangshan
               "assembled binary == reference (XiangShan)");
        ] );
      ("directed-boom", directed_tests Config.boom);
      ("directed-xiangshan", directed_tests Config.xiangshan);
    ]
