(* End-to-end integration tests: every paper leakage case is asserted
   present or absent on each core exactly as Table 3 reports, the
   mitigation knobs behave as Table 4 expects, and the figure scenarios
   reproduce their observations. *)

open Teesec
module Config = Uarch.Config
module Mitigation = Uarch.Mitigation
module Machine = Uarch.Machine

let cases = Alcotest.testable Case.pp Case.equal

let run_testcase config path params =
  let tc = Assembler.assemble ~id:0 path ~params in
  let outcome = Runner.run config tc in
  Checker.check outcome.Runner.log outcome.Runner.tracker

let found config path params case =
  List.exists (Case.equal case) (Checker.distinct_cases (run_testcase config path params))

(* One test per (case, core): the canonical test case for the case's
   access path must surface it exactly when the paper says so. *)
let canonical_path = function
  | Case.D1 -> (Access_path.Imp_acc_pref, Params.make ~offset:56 ~width:8 ())
  | Case.D2 -> (Access_path.Imp_acc_ptw_root, Params.make ())
  | Case.D3 -> (Access_path.Imp_acc_destroy_memset, Params.make ())
  | Case.D4 -> (Access_path.Exp_acc_enc_l1, Params.make ())
  | Case.D5 -> (Access_path.Exp_acc_sm, Params.make ())
  | Case.D6 -> (Access_path.Exp_acc_cross_enclave, Params.make ())
  | Case.D7 -> (Access_path.Exp_acc_host_from_enclave, Params.make ())
  | Case.D8 -> (Access_path.Exp_acc_enc_stb, Params.make ())
  | Case.M1 -> (Access_path.Meta_hpc, Params.make ())
  | Case.M2 -> (Access_path.Meta_btb, Params.make ())

let per_case_tests config =
  List.map
    (fun case ->
      let name =
        Printf.sprintf "%s %s" (Case.to_string case)
          (if Case.expected case config.Config.kind then "found" else "absent")
      in
      Alcotest.test_case name `Quick (fun () ->
          let path, params = canonical_path case in
          Alcotest.(check bool)
            (Case.to_string case ^ " on " ^ config.Config.name)
            (Case.expected case config.Config.kind)
            (found config path params case)))
    Case.all

(* {1 Campaign} *)

let test_campaign_slice_matches_paper config () =
  let result = Campaign.run config (Mitigation_eval.slice ()) in
  (match Campaign.mismatches result with
  | [] -> ()
  | ms ->
    Alcotest.failf "mismatches: %s"
      (String.concat ", "
         (List.map
            (fun (c, expected, got) ->
              Printf.sprintf "%s expected %b got %b" (Case.to_string c) expected got)
            ms)));
  Alcotest.(check bool) "matches paper" true (Campaign.matches_paper result)

let test_campaign_deterministic () =
  let slice = Mitigation_eval.slice () in
  let r1 = Campaign.run Config.boom slice in
  let r2 = Campaign.run Config.boom slice in
  Alcotest.(check (list cases)) "same findings" r1.Campaign.found r2.Campaign.found;
  Alcotest.(check int) "same residue count" r1.Campaign.residue_warnings
    r2.Campaign.residue_warnings;
  Alcotest.(check int) "same cycle count" r1.Campaign.total_cycles r2.Campaign.total_cycles

let test_negative_paths_clean config () =
  (* Store-to-enclave and legitimate page walks must not produce
     numbered findings. *)
  List.iter
    (fun path ->
      Alcotest.(check (list cases))
        (Access_path.to_string path ^ " finds nothing")
        []
        (Checker.distinct_cases (run_testcase config path (Params.make ()))))
    [ Access_path.Exp_store_enc; Access_path.Imp_acc_ptw_legit ]

(* {1 Mitigations (Table 4 spot checks)} *)

let found_under config mitigation case =
  let path, params = canonical_path case in
  found (Config.with_mitigations config [ mitigation ]) path params case

let test_mitigations_boom () =
  (* Clear-illegal-data-returns kills D2 and D4 on BOOM. *)
  Alcotest.(check bool) "clear-illegal stops D4" false
    (found_under Config.boom Mitigation.Clear_illegal_data_returns Case.D4);
  Alcotest.(check bool) "clear-illegal stops D2" false
    (found_under Config.boom Mitigation.Clear_illegal_data_returns Case.D2);
  (* Flushing cannot stop the prefetcher (D1 survives everything). *)
  Alcotest.(check bool) "D1 survives flush-everything" true
    (found_under Config.boom Mitigation.Flush_everything Case.D1);
  (* The LFB flush removes the destroy residue. *)
  Alcotest.(check bool) "flush-lfb stops D3" false
    (found_under Config.boom Mitigation.Flush_lfb Case.D3);
  Alcotest.(check bool) "D3 present at baseline" true
    (found Config.boom Access_path.Imp_acc_destroy_memset (Params.make ()) Case.D3);
  (* BPU/HPC flush removes both metadata cases. *)
  Alcotest.(check bool) "flush-bpu-hpc stops M1" false
    (found_under Config.boom Mitigation.Flush_bpu_hpc Case.M1);
  Alcotest.(check bool) "flush-bpu-hpc stops M2" false
    (found_under Config.boom Mitigation.Flush_bpu_hpc Case.M2);
  (* Flushing the L1D does not help BOOM: the faulting miss still fills
     the LFB (the paper's X* footnote). *)
  Alcotest.(check bool) "flush-l1d insufficient on BOOM" true
    (found_under Config.boom Mitigation.Flush_l1d Case.D4)

let test_mitigations_xiangshan () =
  (* Flushing the L1D is sufficient on XiangShan thanks to the fake-hit
     miss path. *)
  Alcotest.(check bool) "flush-l1d stops D4 on XS" false
    (found_under Config.xiangshan Mitigation.Flush_l1d Case.D4);
  (* The store-buffer flush stops D8. *)
  Alcotest.(check bool) "flush-store-buffer stops D8" false
    (found_under Config.xiangshan Mitigation.Flush_store_buffer Case.D8);
  Alcotest.(check bool) "D8 present at baseline" true
    (found Config.xiangshan Access_path.Exp_acc_enc_stb (Params.make ()) Case.D8);
  Alcotest.(check bool) "clear-illegal stops D8 too" false
    (found_under Config.xiangshan Mitigation.Clear_illegal_data_returns Case.D8)

let test_tagging_extension () =
  (* Tag_bpu_hpc closes both metadata cases on both cores without
     touching the data cases. *)
  List.iter
    (fun base ->
      Alcotest.(check bool) "tagging stops M2" false
        (found_under base Mitigation.Tag_bpu_hpc Case.M2);
      Alcotest.(check bool) "tagging stops M1" false
        (found_under base Mitigation.Tag_bpu_hpc Case.M1);
      Alcotest.(check bool) "tagging leaves D4 untouched" true
        (found_under base Mitigation.Tag_bpu_hpc Case.D4))
    [ Config.boom; Config.xiangshan ]

let test_boom_v2_campaign () =
  (* The pre-SonicBOOM release shows the same findings as v3. *)
  let result = Campaign.run Config.boom_v2 (Mitigation_eval.slice ()) in
  Alcotest.(check bool) "BOOM v2.3 matches the paper's BOOM column" true
    (Campaign.matches_paper result)

let test_overhead_ablation () =
  let result = Overhead.evaluate ~rounds:8 Config.boom in
  Alcotest.(check bool) "baseline measured" true (result.Overhead.baseline_cycles > 0);
  let cycles_of label =
    match
      List.find_opt (fun m -> m.Overhead.label = label) result.Overhead.measurements
    with
    | Some m -> m.Overhead.cycles
    | None -> Alcotest.failf "missing measurement %s" label
  in
  Alcotest.(check bool) "flush-everything is the most expensive" true
    (cycles_of "flush-everything" > result.Overhead.baseline_cycles);
  Alcotest.(check bool) "flush-l1d costs cycles" true
    (cycles_of "flush-l1d" > result.Overhead.baseline_cycles);
  Alcotest.(check bool) "tagging is free" true
    (cycles_of "tag-bpu-hpc" = result.Overhead.baseline_cycles);
  Alcotest.(check bool) "clear-illegal is free on benign code" true
    (cycles_of "clear-illegal-data-returns" = result.Overhead.baseline_cycles)

let test_overhead_workloads () =
  (* Flushing hurts switch-heavy code more than compute-heavy code. *)
  let pct workload =
    let result = Overhead.evaluate ~workload ~rounds:8 Config.xiangshan in
    match
      List.find_opt (fun m -> m.Overhead.label = "flush-everything")
        result.Overhead.measurements
    with
    | Some m -> m.Overhead.overhead_pct
    | None -> Alcotest.fail "missing flush-everything"
  in
  Alcotest.(check bool) "switch-heavy pays more than compute-heavy" true
    (pct Overhead.Switch_heavy > pct Overhead.Compute_heavy)

let test_random_corpus () =
  let corpus = Fuzzer.random_corpus ~seed:0xF00DL ~count:120 in
  Alcotest.(check int) "requested size" 120 (List.length corpus);
  (* Deterministic in the seed. *)
  let names l = List.map Testcase.name l in
  Alcotest.(check (list string)) "deterministic"
    (names corpus)
    (names (Fuzzer.random_corpus ~seed:0xF00DL ~count:120));
  Alcotest.(check bool) "different seed differs" true
    (names corpus <> names (Fuzzer.random_corpus ~seed:0xBEEFL ~count:120));
  (* A modest random corpus still reproduces the Table 3 verdicts. *)
  let result = Campaign.run Config.xiangshan corpus in
  Alcotest.(check bool) "random corpus matches the paper on XS" true
    (Campaign.matches_paper result)

let test_program_trace () =
  let tc = Assembler.assemble ~id:0 Access_path.Meta_btb ~params:(Params.make ()) in
  let outcome = Runner.run Config.boom tc in
  let programs = Env.programs outcome.Runner.env in
  (* Prime (host), enclave workload, probe (host). *)
  Alcotest.(check int) "three fragments" 3 (List.length programs);
  (match programs with
  | (l1, _) :: (l2, _) :: (l3, _) :: _ ->
    Alcotest.(check string) "prime runs as host" "host-S" l1;
    Alcotest.(check string) "victim runs as enclave" "enclave-0" l2;
    Alcotest.(check string) "probe runs as host" "host-S" l3
  | _ -> Alcotest.fail "unexpected trace shape")

let test_recommendations () =
  let xs = Recommend.evaluate ~max_size:2 Config.xiangshan in
  let best_xs = Recommend.best xs in
  Alcotest.(check (list cases)) "XS: a 2-knob set closes everything" []
    best_xs.Recommend.residual;
  Alcotest.(check bool) "XS best is near-free" true
    (best_xs.Recommend.overhead_pct < 5.0);
  let boom = Recommend.evaluate ~max_size:2 Config.boom in
  let best_boom = Recommend.best boom in
  (* D1 survives every software/flush combination on BOOM. *)
  Alcotest.(check bool) "BOOM: D1 is irreducible" true
    (List.exists (Case.equal Case.D1) best_boom.Recommend.residual);
  List.iter
    (fun r ->
      Alcotest.(check bool) "D1 in every residual" true
        (List.exists (Case.equal Case.D1) r.Recommend.residual))
    boom.Recommend.ranked

let test_coverage () =
  List.iter
    (fun config ->
      let c = Coverage.measure config (Mitigation_eval.slice ()) in
      Alcotest.(check int) "all paths exercised" (List.length Access_path.all)
        c.Coverage.paths_covered;
      Alcotest.(check (float 0.01)) "100% path coverage" 100.0 c.Coverage.path_coverage_pct;
      Alcotest.(check (float 0.01)) "100% writable-structure coverage" 100.0
        c.Coverage.structure_coverage_pct;
      (* The prefetch origin appears exactly on the core that has one. *)
      Alcotest.(check bool) "prefetch origin iff prefetcher" config.Config.has_l1_prefetcher
        (List.mem Simlog.Log.Prefetch c.Coverage.origins_observed))
    [ Config.boom; Config.xiangshan ]

let test_log_serialization_of_real_run () =
  (* A real test-case log survives the SimLog.txt round trip and the
     checker finds the same cases on the parsed copy. *)
  let tc = Assembler.assemble ~id:0 Access_path.Exp_acc_enc_l1 ~params:(Params.make ()) in
  let outcome = Runner.run Config.boom tc in
  let text = Simlog.Serialize.to_string outcome.Runner.log in
  match Simlog.Serialize.parse_string text with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok parsed ->
    let original = Checker.distinct_cases (Checker.check outcome.Runner.log outcome.Runner.tracker) in
    let reparsed = Checker.distinct_cases (Checker.check parsed outcome.Runner.tracker) in
    Alcotest.(check (list cases)) "same verdict on the parsed log" original reparsed

let test_csv_exports () =
  let result = Campaign.run Config.xiangshan (Mitigation_eval.slice ()) in
  let csv = Tables.table3_csv [ result ] in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 10 case rows" 11 (List.length lines);
  Alcotest.(check bool) "header labels" true
    (match lines with
    | h :: _ -> h = "case,XiangShan_paper,XiangShan_measured,XiangShan_testcases"
    | [] -> false);
  let mit = Mitigation_eval.evaluate Config.xiangshan in
  let csv4 = Tables.table4_csv [ mit ] in
  let lines4 = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv4) in
  Alcotest.(check int) "header + 10x7 mitigation rows" (1 + (10 * 7))
    (List.length lines4)

let test_btb_tag_sweep () =
  (* XiangShan geometry: 1-bit offset + 10 index bits; the PCs differ at
     bit 27, so tags of <= 16 bits alias and 17+ bits separate. *)
  List.iter
    (fun (bits, aliases, distinguishable) ->
      let expected = bits <= 16 in
      Alcotest.(check bool) (Printf.sprintf "alias at tag=%d" bits) expected aliases;
      Alcotest.(check bool)
        (Printf.sprintf "channel at tag=%d" bits)
        expected distinguishable)
    (Scenarios.btb_tag_sweep Config.xiangshan ~tag_bits:[ 14; 16; 17; 20 ])

(* Checker soundness: purely benign host activity produces no findings,
   whatever addresses and values it touches. *)
let prop_benign_programs_clean =
  QCheck.Test.make ~name:"benign host programs produce no findings" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 15) (pair (int_bound 63) int64))
    (fun accesses ->
      let env = Env.create Config.boom Params.default in
      let instrs =
        List.concat_map
          (fun (slot, value) ->
            [
              Riscv.Instr.Li (Riscv.Instr.t0, value);
              Riscv.Instr.Li
                ( Riscv.Instr.t1,
                  Int64.add Tee.Memory_layout.host_data_base (Int64.of_int (slot * 8)) );
              Riscv.Instr.sd Riscv.Instr.t0 Riscv.Instr.t1 0L;
              Riscv.Instr.ld Riscv.Instr.t2 Riscv.Instr.t1 0L;
            ])
          accesses
        @ [ Riscv.Instr.Fence; Riscv.Instr.Halt ]
      in
      ignore
        (Tee.Security_monitor.run_host env.Env.sm
           (Riscv.Program.of_instrs ~base:Tee.Memory_layout.host_code_base instrs));
      Machine.switch_context env.Env.machine
        ~to_ctx:(Simlog.Exec_context.Host Riscv.Priv.Supervisor);
      Checker.check (Machine.log env.Env.machine) env.Env.tracker = [])

let test_verification_report () =
  let report =
    Verification_report.generate
      ~options:
        {
          Verification_report.full_corpus = false;
          include_scenarios = true;
          include_recommendations = false;
        }
      [ Config.xiangshan ]
  in
  let contains needle =
    let n = String.length needle and m = String.length report in
    let rec at i = i + n <= m && (String.sub report i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true (contains needle))
    [
      "# TEESec verification report";
      "## Leakage campaign";
      "## Mitigation matrix";
      "## Coverage";
      "matches the paper's verdicts";
      "Figure 7";
    ]

(* {1 Scenarios (figures)} *)

let observation trace key =
  match List.assoc_opt key trace.Scenarios.observations with
  | Some v -> v
  | None -> Alcotest.failf "missing observation %S in %s" key trace.Scenarios.title

let test_figure2 () =
  let boom = Scenarios.prefetcher Config.boom in
  Alcotest.(check string) "BOOM leaks via prefetch" "true"
    (observation boom "enclave line pulled into LFB (D1)");
  let xs = Scenarios.prefetcher Config.xiangshan in
  Alcotest.(check string) "XS has no L1 prefetcher" "false"
    (observation xs "prefetcher present")

let test_figure3 () =
  let boom = Scenarios.ptw Config.boom in
  Alcotest.(check string) "BOOM PTW fills the LFB" "true"
    (observation boom "enclave line filled into LFB (D2)");
  let xs = Scenarios.ptw Config.xiangshan in
  Alcotest.(check string) "XS pre-check suppresses the request" "false"
    (observation xs "enclave line filled into LFB (D2)")

let test_figure4 () =
  let boom = Scenarios.destroy_residue Config.boom in
  Alcotest.(check string) "BOOM retains destroy residue" "true"
    (observation boom "secrets persist in LFB after switch (D3)");
  let xs = Scenarios.destroy_residue Config.xiangshan in
  Alcotest.(check string) "XS miss queue clears" "false"
    (observation xs "secrets persist in LFB after switch (D3)")

let test_figure5 () =
  let xs = Scenarios.xs_fake_hit Config.xiangshan in
  Alcotest.(check string) "hit forwards the secret" "verbatim secret"
    (observation xs "hit response data");
  Alcotest.(check string) "miss returns zero" "zero (fake hit)"
    (observation xs "miss response data");
  let hit = int_of_string (observation xs "hit response latency (cycles)") in
  let miss = int_of_string (observation xs "miss response latency (cycles)") in
  Alcotest.(check bool) "C3-vs-C30 latency gap" true (miss > hit);
  Alcotest.(check int) "hit at the configured latency"
    Config.xiangshan.Config.latencies.Config.l1_hit hit

let test_figure6 () =
  let xs = Scenarios.hpc_interrupt Config.xiangshan in
  Alcotest.(check string) "XS lazy check" "lazy" (observation xs "CSR privilege check");
  Alcotest.(check string) "XS spills to store buffer" "true"
    (observation xs "counter value spilled to store buffer");
  Alcotest.(check string) "architectural state protected" "false"
    (observation xs "architectural register leaked");
  let boom = Scenarios.hpc_interrupt Config.boom in
  Alcotest.(check string) "BOOM early check writes nothing" "false"
    (observation boom "counter value spilled to store buffer")

let test_figure7 () =
  List.iter
    (fun config ->
      let t = Scenarios.btb_alias config in
      Alcotest.(check string)
        (config.Config.name ^ " PCs alias")
        "true" (observation t "PCs alias");
      Alcotest.(check string)
        (config.Config.name ^ " outcome distinguishable")
        "true"
        (observation t "outcome distinguishable"))
    [ Config.boom; Config.xiangshan ]

(* {1 Reports} *)

let test_report_rendering () =
  let tc = Assembler.assemble ~id:0 Access_path.Exp_acc_enc_l1 ~params:(Params.make ()) in
  let outcome = Runner.run Config.boom tc in
  let findings = Checker.check outcome.Runner.log outcome.Runner.tracker in
  let text = Format.asprintf "%a" (fun fmt () -> Report.render fmt outcome findings) () in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions leakage" true (contains "Enclave secret leakage detected");
  Alcotest.(check bool) "mentions the register file" true (contains "register-file");
  Alcotest.(check bool) "mentions the cycle" true (contains "Sim Cycle No.")

let () =
  Alcotest.run "integration"
    [
      ("table3-boom", per_case_tests Config.boom);
      ("table3-xiangshan", per_case_tests Config.xiangshan);
      ( "campaign",
        [
          Alcotest.test_case "BOOM slice matches paper" `Slow
            (test_campaign_slice_matches_paper Config.boom);
          Alcotest.test_case "XiangShan slice matches paper" `Slow
            (test_campaign_slice_matches_paper Config.xiangshan);
          Alcotest.test_case "deterministic" `Slow test_campaign_deterministic;
          Alcotest.test_case "negative paths clean on BOOM" `Quick
            (test_negative_paths_clean Config.boom);
          Alcotest.test_case "negative paths clean on XS" `Quick
            (test_negative_paths_clean Config.xiangshan);
        ] );
      ( "mitigations",
        [
          Alcotest.test_case "BOOM knobs" `Slow test_mitigations_boom;
          Alcotest.test_case "XiangShan knobs" `Slow test_mitigations_xiangshan;
          Alcotest.test_case "tagging extension (section 8)" `Slow test_tagging_extension;
          Alcotest.test_case "BOOM v2.3 campaign" `Slow test_boom_v2_campaign;
          Alcotest.test_case "overhead ablation (extension)" `Quick test_overhead_ablation;
          Alcotest.test_case "coverage (extension)" `Slow test_coverage;
          Alcotest.test_case "mitigation recommendations (extension)" `Slow
            test_recommendations;
          Alcotest.test_case "overhead workload ordering" `Slow test_overhead_workloads;
          Alcotest.test_case "random long-fuzzing corpus" `Slow test_random_corpus;
          Alcotest.test_case "program trace (dump-asm)" `Quick test_program_trace;
          Alcotest.test_case "SimLog round-trip on a real run" `Quick
            test_log_serialization_of_real_run;
          Alcotest.test_case "verification report (extension)" `Slow
            test_verification_report;
          Alcotest.test_case "uBTB tag-width sweep (extension)" `Slow test_btb_tag_sweep;
          Alcotest.test_case "CSV exports" `Slow test_csv_exports;
          QCheck_alcotest.to_alcotest prop_benign_programs_clean;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 2: prefetcher" `Quick test_figure2;
          Alcotest.test_case "figure 3: page walk" `Quick test_figure3;
          Alcotest.test_case "figure 4: destroy residue" `Quick test_figure4;
          Alcotest.test_case "figure 5: fake hit" `Quick test_figure5;
          Alcotest.test_case "figure 6: HPC interrupt" `Quick test_figure6;
          Alcotest.test_case "figure 7: uBTB alias" `Quick test_figure7;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
    ]
