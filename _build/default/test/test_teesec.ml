(* Tests for the TEESec framework modules: secrets, cases, access paths,
   the execution model and gadget contracts, the assembler, the fuzzer,
   the checker's classification logic, the plan and the table
   renderers. *)

open Teesec
module Config = Uarch.Config
module Mitigation = Uarch.Mitigation
module Log = Simlog.Log
module Structure = Simlog.Structure
module Exec_context = Simlog.Exec_context

let host_s = Exec_context.Host Riscv.Priv.Supervisor

(* {1 Secret} *)

let test_secret_tracing () =
  let t = Secret.create_tracker () in
  let v = Secret.register t ~seed:1L ~addr:0x8800_8000L ~owner:(Secret.Enclave_owner 0) in
  Alcotest.(check bool) "nonzero" false (Int64.equal v 0L);
  (match Secret.find_by_value t v with
  | Some s ->
    Alcotest.(check int64) "traced back to address" 0x8800_8000L s.Secret.addr
  | None -> Alcotest.fail "value should trace back");
  Alcotest.(check bool) "unknown value" true (Secret.find_by_value t 0x1234L = None);
  (* Same (seed, addr) is deterministic; different seeds differ. *)
  Alcotest.(check int64) "deterministic" v
    (Secret.value_for ~seed:1L ~addr:0x8800_8000L);
  Alcotest.(check bool) "seed-dependent" false
    (Int64.equal v (Secret.value_for ~seed:2L ~addr:0x8800_8000L))

let test_secret_register_line () =
  let t = Secret.create_tracker () in
  let seeded = Secret.register_line t ~seed:7L ~line_addr:0x8800_8000L
      ~owner:(Secret.Enclave_owner 0) in
  Alcotest.(check int) "eight words" 8 (List.length seeded);
  Alcotest.(check int) "all tracked" 8 (Secret.count t);
  let values = List.map (fun (s : Secret.seeded) -> s.Secret.value) seeded in
  Alcotest.(check int) "distinct values" 8 (List.length (List.sort_uniq compare values));
  List.iteri
    (fun i (s : Secret.seeded) ->
      Alcotest.(check int64) "addresses ascend"
        (Int64.add 0x8800_8000L (Int64.of_int (i * 8)))
        s.Secret.addr)
    seeded

let test_secret_authorization () =
  let check owner ctx expected =
    Alcotest.(check bool)
      (Secret.owner_to_string owner ^ " vs " ^ Exec_context.to_string ctx)
      expected
      (Secret.authorized owner ctx)
  in
  check (Secret.Enclave_owner 0) (Exec_context.Enclave 0) true;
  check (Secret.Enclave_owner 0) (Exec_context.Enclave 1) false;
  check (Secret.Enclave_owner 0) host_s false;
  check (Secret.Enclave_owner 0) Exec_context.Monitor true;
  check Secret.Sm_owner host_s false;
  check Secret.Sm_owner (Exec_context.Enclave 0) false;
  check Secret.Sm_owner Exec_context.Monitor true;
  check Secret.Host_owner host_s true;
  check Secret.Host_owner (Exec_context.Enclave 0) false

let test_secret_derived_flag () =
  let t = Secret.create_tracker () in
  Secret.register_value t ~value:0xABL ~addr:0x8800_8000L ~owner:(Secret.Enclave_owner 0);
  (match Secret.all t with
  | [ s ] -> Alcotest.(check bool) "derived marked" true s.Secret.derived
  | _ -> Alcotest.fail "one entry expected");
  (* Zero-valued derived secrets are dropped (they would match
     everything). *)
  Secret.register_value t ~value:0L ~addr:0x8800_8008L ~owner:(Secret.Enclave_owner 0);
  Alcotest.(check int) "zero not registered" 1 (Secret.count t)

(* {1 Case} *)

let test_case_metadata () =
  Alcotest.(check int) "ten cases" 10 (List.length Case.all);
  Alcotest.(check int) "eight data cases" 8
    (List.length (List.filter (fun c -> Case.principle c = Case.P1) Case.all));
  Alcotest.(check int) "two metadata cases" 2
    (List.length (List.filter (fun c -> Case.principle c = Case.P2) Case.all));
  (* Table 3 shape: BOOM misses only D8; XiangShan misses D1-D3. *)
  let found_on core = List.filter (fun c -> Case.expected c core) Case.all in
  Alcotest.(check int) "BOOM finds 9" 9 (List.length (found_on Config.Boom));
  Alcotest.(check int) "XS finds 7" 7 (List.length (found_on Config.Xiangshan));
  Alcotest.(check bool) "D8 not on BOOM" false (Case.expected Case.D8 Config.Boom);
  Alcotest.(check bool) "D1 not on XS" false (Case.expected Case.D1 Config.Xiangshan);
  (* Together they cover all 10. *)
  let union =
    List.sort_uniq Case.compare (found_on Config.Boom @ found_on Config.Xiangshan)
  in
  Alcotest.(check int) "10 distinct across both" 10 (List.length union)

(* {1 Access paths} *)

let test_access_path_inventory () =
  Alcotest.(check int) "15 paths" 15 (List.length Access_path.all);
  Alcotest.(check int) "13 data paths" 13 (List.length Access_path.data_paths);
  Alcotest.(check int) "2 metadata paths" 2 (List.length Access_path.metadata_paths);
  let names = List.map Access_path.to_string Access_path.all in
  Alcotest.(check int) "names distinct" 15 (List.length (List.sort_uniq compare names));
  (* Every leakage case is reachable from some access path. *)
  let reachable =
    List.sort_uniq Case.compare (List.concat_map Access_path.candidate_cases Access_path.all)
  in
  Alcotest.(check int) "all 10 cases reachable" 10 (List.length reachable)

let test_perm_policies () =
  Alcotest.(check string) "prefetch unchecked" "unchecked"
    (Access_path.perm_policy_to_string
       (Access_path.perm_policy Access_path.Imp_acc_pref Config.Boom));
  Alcotest.(check string) "XS PTW serial" "checked-serial"
    (Access_path.perm_policy_to_string
       (Access_path.perm_policy Access_path.Imp_acc_ptw_root Config.Xiangshan));
  Alcotest.(check string) "BOOM PTW parallel" "checked-parallel"
    (Access_path.perm_policy_to_string
       (Access_path.perm_policy Access_path.Imp_acc_ptw_root Config.Boom));
  Alcotest.(check string) "explicit loads race the check" "checked-parallel"
    (Access_path.perm_policy_to_string
       (Access_path.perm_policy Access_path.Exp_acc_enc_l1 Config.Xiangshan))

(* {1 Gadget library and execution model} *)

let test_gadget_inventory () =
  (* Matches the paper's Table 2 counts. *)
  Alcotest.(check int) "8 setup gadgets" 8 (List.length Gadget_library.setup_gadgets);
  Alcotest.(check int) "12 helper gadgets" 12 (List.length Gadget_library.helper_gadgets);
  Alcotest.(check int) "15 access gadgets" 15 (List.length Gadget_library.access_gadgets);
  let names = List.map Gadget.name Gadget_library.all in
  Alcotest.(check int) "35 distinct names" 35 (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "find existing" true (Gadget_library.find "Fill_Enc_Mem" <> None);
  Alcotest.(check bool) "find missing" true (Gadget_library.find "Nope" = None)

let test_exec_model_contracts () =
  let m = Exec_model.initial () in
  (* Access gadgets are not applicable on the empty state. *)
  Alcotest.(check bool) "L1 access needs a secret" false
    (Gadget.applicable (Gadget_library.access_gadget Access_path.Exp_acc_enc_l1) m);
  Alcotest.(check bool) "create applicable initially" true
    (Gadget.applicable Gadget_library.create_enclave m);
  Gadget.apply Gadget_library.create_enclave m;
  Alcotest.(check bool) "second create rejected" false
    (Gadget.applicable Gadget_library.create_enclave m);
  Gadget.apply Gadget_library.fill_enc_mem m;
  Alcotest.(check bool) "secret now in L1" true m.Exec_model.secret.Exec_model.in_l1;
  Alcotest.(check bool) "L1 access now applicable" true
    (Gadget.applicable (Gadget_library.access_gadget Access_path.Exp_acc_enc_l1) m);
  Gadget.apply Gadget_library.evict_enc_l1 m;
  Alcotest.(check bool) "evicted from L1" false m.Exec_model.secret.Exec_model.in_l1;
  Alcotest.(check bool) "now in L2" true m.Exec_model.secret.Exec_model.in_l2

let test_exec_model_copy_isolated () =
  let m = Exec_model.initial () in
  let c = Exec_model.copy m in
  c.Exec_model.secret.Exec_model.in_l1 <- true;
  Alcotest.(check bool) "copy does not alias" false m.Exec_model.secret.Exec_model.in_l1

(* {1 Assembler} *)

let test_assembler_all_paths_valid () =
  List.iter
    (fun path ->
      let params = Params.default in
      let tc = Assembler.assemble ~id:0 path ~params in
      (* The access gadget comes last and matches the requested path. *)
      match Gadget.access_path (Testcase.access_gadget tc) with
      | Some p ->
        Alcotest.(check string)
          (Access_path.to_string path ^ " chain ends in its access gadget")
          (Access_path.to_string path) (Access_path.to_string p)
      | None -> Alcotest.fail "last gadget must be an access gadget")
    Access_path.all

let test_assembler_rejects_invalid_chain () =
  (* An access gadget without its helpers must be rejected by the model. *)
  let bad = [ Gadget_library.access_gadget Access_path.Exp_acc_enc_l1 ] in
  (try
     ignore (Assembler.validate bad);
     Alcotest.fail "expected Invalid_chain"
   with Assembler.Invalid_chain _ -> ());
  (* A full recipe validates. *)
  let good =
    Assembler.recipe Access_path.Exp_acc_enc_l1 ~params:Params.default
    @ [ Gadget_library.access_gadget Access_path.Exp_acc_enc_l1 ]
  in
  ignore (Assembler.validate good)

(* {1 Fuzzer} *)

let test_fuzzer_corpus_size () =
  (* The paper's prototype generated 585 test cases. *)
  Alcotest.(check int) "585 test cases" 585 (Fuzzer.total_cases ());
  let corpus = Fuzzer.corpus () in
  Alcotest.(check int) "corpus materialises fully" 585 (List.length corpus);
  (* Ids are unique and sequential. *)
  let ids = List.map (fun tc -> tc.Testcase.id) corpus in
  Alcotest.(check int) "ids unique" 585 (List.length (List.sort_uniq compare ids))

let test_fuzzer_grid_shape () =
  (* Pin the published per-path corpus composition (sums to 585). *)
  let expected =
    [
      (Access_path.Exp_acc_enc_l1, 128);
      (Access_path.Exp_acc_enc_l2, 64);
      (Access_path.Exp_acc_enc_mem, 32);
      (Access_path.Exp_acc_enc_stb, 64);
      (Access_path.Exp_acc_enc_misaligned, 25);
      (Access_path.Exp_acc_sm, 32);
      (Access_path.Exp_acc_cross_enclave, 32);
      (Access_path.Exp_acc_host_from_enclave, 32);
      (Access_path.Exp_store_enc, 32);
      (Access_path.Imp_acc_pref, 32);
      (Access_path.Imp_acc_ptw_root, 32);
      (Access_path.Imp_acc_ptw_legit, 16);
      (Access_path.Imp_acc_destroy_memset, 16);
      (Access_path.Meta_hpc, 24);
      (Access_path.Meta_btb, 24);
    ]
  in
  List.iter2
    (fun (p, n) (p', n') ->
      Alcotest.(check string) "path order" (Access_path.to_string p)
        (Access_path.to_string p');
      Alcotest.(check int) (Access_path.to_string p ^ " count") n n')
    expected (Fuzzer.count_per_path ())

let test_fuzzer_covers_all_paths () =
  let per_path = Fuzzer.count_per_path () in
  Alcotest.(check int) "all 15 paths covered" 15 (List.length per_path);
  List.iter
    (fun (path, n) ->
      Alcotest.(check bool) (Access_path.to_string path ^ " has cases") true (n > 0))
    per_path

let test_fuzzer_deterministic () =
  let params l = List.map (fun tc -> Params.to_string tc.Testcase.params) l in
  Alcotest.(check (list string)) "corpus regeneration identical"
    (params (Fuzzer.corpus ())) (params (Fuzzer.corpus ()))

let test_fuzzer_widths_valid () =
  List.iter
    (fun tc ->
      let p = tc.Testcase.params in
      Alcotest.(check bool) "width valid" true
        (List.mem p.Params.width [ 1; 2; 4; 8 ]);
      Alcotest.(check bool) "offset in line" true
        (p.Params.offset >= 0 && p.Params.offset < 64))
    (Fuzzer.corpus ())

let test_fuzzer_random_params () =
  let rng_state = ref 42L in
  let p1 = Fuzzer.random_params ~rng_state Access_path.Exp_acc_enc_l1 in
  let p2 = Fuzzer.random_params ~rng_state Access_path.Exp_acc_enc_l1 in
  (* Draws come from the grid. *)
  let grid = Fuzzer.grid Access_path.Exp_acc_enc_l1 in
  Alcotest.(check bool) "draw 1 from grid" true (List.mem p1 grid);
  Alcotest.(check bool) "draw 2 from grid" true (List.mem p2 grid)

(* {1 Checker classification} *)

let synthetic_log entries_maker =
  let log = Log.create () in
  entries_maker log;
  log

let tracked_secret ?(owner = Secret.Enclave_owner 0) () =
  let t = Secret.create_tracker () in
  let v = Secret.register t ~seed:9L ~addr:0x8800_8000L ~owner in
  (t, v)

let test_checker_classifies_d1 () =
  let t, v = tracked_secret () in
  let log =
    synthetic_log (fun log ->
        Log.record log ~cycle:100 ~ctx:host_s
          (Log.Write
             { structure = Structure.Lfb; entries = [ Log.entry v ]; origin = Log.Prefetch }))
  in
  let findings = Checker.check log t in
  Alcotest.(check bool) "classified D1" true
    (List.exists (fun f -> f.Checker.case = Some Case.D1) findings)

let test_checker_classifies_d2_d3 () =
  let t, v = tracked_secret () in
  let log =
    synthetic_log (fun log ->
        Log.record log ~cycle:100 ~ctx:host_s
          (Log.Write
             { structure = Structure.Lfb; entries = [ Log.entry v ]; origin = Log.Ptw_walk });
        (* D3 manifests as residue whose provenance is the memset. *)
        Log.record log ~cycle:200 ~ctx:Exec_context.Monitor
          (Log.Write
             { structure = Structure.Lfb; entries = [ Log.entry v ]; origin = Log.Memset_destroy });
        Log.record log ~cycle:300 ~ctx:host_s
          (Log.Snapshot { structure = Structure.Lfb; entries = [ Log.entry v ] }))
  in
  let cases = Checker.distinct_cases (Checker.check log t) in
  Alcotest.(check bool) "D2 found" true (List.exists (Case.equal Case.D2) cases);
  Alcotest.(check bool) "D3 found" true (List.exists (Case.equal Case.D3) cases)

let test_checker_classifies_rf_cases () =
  let rf_write ~owner ~ctx ~note =
    let t, v = tracked_secret ~owner () in
    let log =
      synthetic_log (fun log ->
          Log.record log ~cycle:10 ~ctx
            (Log.Write
               {
                 structure = Structure.Reg_file;
                 entries = [ Log.entry ~note v ];
                 origin = Log.Explicit_load;
               }))
    in
    Checker.distinct_cases (Checker.check log t)
  in
  let transient = "l1-hit-before-squash transient" in
  Alcotest.(check bool) "D4" true
    (List.mem Case.D4 (rf_write ~owner:(Secret.Enclave_owner 0) ~ctx:host_s ~note:transient));
  Alcotest.(check bool) "D5" true
    (List.mem Case.D5 (rf_write ~owner:Secret.Sm_owner ~ctx:host_s ~note:transient));
  Alcotest.(check bool) "D6" true
    (List.mem Case.D6
       (rf_write ~owner:(Secret.Enclave_owner 0) ~ctx:(Exec_context.Enclave 1) ~note:transient));
  Alcotest.(check bool) "D7" true
    (List.mem Case.D7
       (rf_write ~owner:Secret.Host_owner ~ctx:(Exec_context.Enclave 0) ~note:transient));
  Alcotest.(check bool) "D8" true
    (List.mem Case.D8
       (rf_write ~owner:(Secret.Enclave_owner 0) ~ctx:host_s
          ~note:"forwarded-from-store-buffer transient"));
  (* A non-transient RF write is not an exploitable case. *)
  Alcotest.(check (list reject)) "non-transient unclassified" []
    (rf_write ~owner:(Secret.Enclave_owner 0) ~ctx:host_s ~note:"load")

let test_checker_trusted_contexts_clean () =
  let t, v = tracked_secret () in
  let log =
    synthetic_log (fun log ->
        (* The enclave and the monitor may see the secret freely. *)
        Log.record log ~cycle:1 ~ctx:(Exec_context.Enclave 0)
          (Log.Write
             { structure = Structure.Reg_file; entries = [ Log.entry ~note:"load" v ];
               origin = Log.Explicit_load });
        Log.record log ~cycle:2 ~ctx:Exec_context.Monitor
          (Log.Write
             { structure = Structure.Lfb; entries = [ Log.entry v ];
               origin = Log.Memset_destroy }))
  in
  Alcotest.(check int) "no findings for trusted observers" 0
    (List.length (Checker.check log t))

let test_checker_residue_unclassified () =
  let t, v = tracked_secret () in
  let log =
    synthetic_log (fun log ->
        Log.record log ~cycle:5 ~ctx:host_s
          (Log.Snapshot { structure = Structure.L1d_data; entries = [ Log.entry v ] }))
  in
  let findings = Checker.check log t in
  Alcotest.(check int) "one residue warning" 1 (Checker.residue_warnings findings);
  Alcotest.(check (list reject)) "not a numbered case" []
    (Checker.distinct_cases findings)

let test_checker_derived_only_transient () =
  let t = Secret.create_tracker () in
  Secret.register_value t ~value:0x42L ~addr:0x8800_8000L ~owner:(Secret.Enclave_owner 0);
  let log =
    synthetic_log (fun log ->
        (* A benign host write-back of the same small value must not match. *)
        Log.record log ~cycle:1 ~ctx:host_s
          (Log.Write
             { structure = Structure.Reg_file; entries = [ Log.entry ~note:"li" 0x42L ];
               origin = Log.Writeback });
        (* Nor a snapshot residue. *)
        Log.record log ~cycle:2 ~ctx:host_s
          (Log.Snapshot { structure = Structure.L1d_data; entries = [ Log.entry 0x42L ] });
        (* Only a transient RF forward counts. *)
        Log.record log ~cycle:3 ~ctx:host_s
          (Log.Write
             {
               structure = Structure.Reg_file;
               entries = [ Log.entry ~note:"l1-hit-before-squash transient" 0x42L ];
               origin = Log.Explicit_load;
             }))
  in
  let findings = Checker.check log t in
  Alcotest.(check int) "exactly one finding" 1 (List.length findings);
  Alcotest.(check bool) "it is D4" true
    (List.exists (fun f -> f.Checker.case = Some Case.D4) findings)

let test_checker_m2_residue () =
  let log =
    synthetic_log (fun log ->
        Log.record log ~cycle:50 ~ctx:host_s
          (Log.Snapshot
             {
               structure = Structure.Ubtb;
               entries = [ Log.entry ~note:"tag=0x0 taken=true owner=enclave-0" 0x8800_0008L ];
             }))
  in
  let findings = Checker.check log (Secret.create_tracker ()) in
  Alcotest.(check bool) "M2 from uBTB residue" true
    (List.exists (fun f -> f.Checker.case = Some Case.M2) findings);
  (* Host-owned entries are fine. *)
  let clean =
    synthetic_log (fun log ->
        Log.record log ~cycle:50 ~ctx:host_s
          (Log.Snapshot
             {
               structure = Structure.Ubtb;
               entries = [ Log.entry ~note:"tag=0x0 taken=true owner=host-S" 0x8000_0008L ];
             }))
  in
  Alcotest.(check int) "host entries are clean" 0
    (List.length (Checker.check clean (Secret.create_tracker ())))

let test_checker_dedupes () =
  let t, v = tracked_secret () in
  let log =
    synthetic_log (fun log ->
        for i = 1 to 5 do
          Log.record log ~cycle:i ~ctx:host_s
            (Log.Write
               { structure = Structure.Lfb; entries = [ Log.entry v ]; origin = Log.Prefetch })
        done)
  in
  let findings = Checker.check log t in
  Alcotest.(check int) "five identical hits dedupe to one" 1 (List.length findings)

(* {1 Smaller helpers} *)

let test_mitigation_expansion () =
  Alcotest.(check bool) "flush-everything implies flush-lfb" true
    (Mitigation.active [ Mitigation.Flush_everything ] Mitigation.Flush_lfb);
  Alcotest.(check bool) "flush-everything implies flush-l1d" true
    (Mitigation.active [ Mitigation.Flush_everything ] Mitigation.Flush_l1d);
  Alcotest.(check bool) "but not clear-illegal (a datapath change)" false
    (Mitigation.active [ Mitigation.Flush_everything ] Mitigation.Clear_illegal_data_returns);
  Alcotest.(check bool) "atom implies itself" true
    (Mitigation.active [ Mitigation.Flush_lfb ] Mitigation.Flush_lfb);
  Alcotest.(check bool) "empty set implies nothing" false
    (Mitigation.active [] Mitigation.Flush_lfb);
  Alcotest.(check int) "six paper mitigations" 6 (List.length Mitigation.all);
  Alcotest.(check int) "one extension" 1 (List.length Mitigation.extensions)

let test_params_and_testcase_rendering () =
  let p = Params.make ~offset:8 ~width:4 ~variant:2 ~seed:0xAAL () in
  let s = Params.to_string p in
  Alcotest.(check bool) "params mention offset" true
    (String.length s > 0 && String.sub s 0 6 = "offset");
  let tc = Assembler.assemble ~id:7 Access_path.Exp_acc_enc_l1 ~params:p in
  let name = Testcase.name tc in
  Alcotest.(check bool) "name carries the id" true
    (String.length name > 2 && String.sub name 0 2 = "#7");
  Alcotest.(check string) "access gadget name" "Exp_Acc_Enc_L1"
    (Gadget.name (Testcase.access_gadget tc))

let test_case_strings () =
  List.iter
    (fun case ->
      Alcotest.(check bool) "description nonempty" true
        (String.length (Case.description case) > 10);
      Alcotest.(check bool) "access path nonempty" true
        (String.length (Case.access_path case) > 10);
      (* Table 3's source column. *)
      ignore (Case.source case))
    Case.all;
  Alcotest.(check bool) "D1 sourced in the LFB" true
    (Structure.equal (Case.source Case.D1) Structure.Lfb);
  Alcotest.(check bool) "M2 sourced in the uBTB" true
    (Structure.equal (Case.source Case.M2) Structure.Ubtb)

let test_env_errors () =
  let env = Env.create Config.boom Params.default in
  Alcotest.check_raises "victim before create"
    (Invalid_argument "Env.victim_exn: no victim enclave created") (fun () ->
      ignore (Env.victim_exn env));
  Alcotest.check_raises "attacker before create"
    (Invalid_argument "Env.attacker_exn: no attacker enclave created") (fun () ->
      ignore (Env.attacker_exn env))

let test_summary_line () =
  let tc = Assembler.assemble ~id:0 Access_path.Exp_acc_enc_l1 ~params:Params.default in
  let outcome = Runner.run Config.boom tc in
  let findings = Checker.check outcome.Runner.log outcome.Runner.tracker in
  let line = Report.summary_line tc findings in
  let contains needle =
    let n = String.length needle and m = String.length line in
    let rec at i = i + n <= m && (String.sub line i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions D4" true (contains "D4");
  Alcotest.(check bool) "mentions residue warnings" true (contains "residue warnings");
  (* A clean run renders as clean. *)
  let clean = Report.summary_line tc [] in
  let contains_clean =
    let needle = "clean" in
    let n = String.length needle and m = String.length clean in
    let rec at i = i + n <= m && (String.sub clean i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "clean marker" true contains_clean

let test_recommend_candidates () =
  let sets = Recommend.candidate_sets ~max_size:2 in
  (* Empty set + 6 singles + C(6,2)=15 pairs + 2 flush-everything forms. *)
  Alcotest.(check int) "candidate count" (1 + 6 + 15 + 2) (List.length sets);
  Alcotest.(check bool) "baseline included" true (List.mem [] sets);
  (* No duplicates. *)
  Alcotest.(check int) "distinct" (List.length sets)
    (List.length (List.sort_uniq compare sets))

(* {1 Eviction sets} *)

let test_eviction_set_build () =
  let config = Config.boom in
  let target = 0x8800_8000L in
  let set = Eviction_set.build config ~target ~from:0x8004_0000L ~count:4 in
  Alcotest.(check int) "requested count" 4 (List.length set);
  List.iter
    (fun addr ->
      Alcotest.(check bool) "same set as target" true
        (Eviction_set.same_set config ~addr1:addr ~addr2:target);
      Alcotest.(check bool) "not the target line" false
        (Int64.equal
           (Riscv.Word.align_down addr ~alignment:64)
           (Riscv.Word.align_down target ~alignment:64)))
    set;
  Alcotest.(check int) "distinct lines" 4
    (List.length (List.sort_uniq compare set))

let test_eviction_set_instrs () =
  let set = Eviction_set.build Config.boom ~target:0x8800_8000L ~from:0x8004_0000L ~count:2 in
  (* Prime touches each address once and fences; probe reads the cycle
     counter around each access. *)
  Alcotest.(check int) "prime length" ((2 * 2) + 1)
    (List.length (Eviction_set.prime_instrs set));
  Alcotest.(check int) "probe length" (1 + (2 * 6))
    (List.length (Eviction_set.probe_instrs set))

let prop_eviction_addresses_conflict =
  QCheck.Test.make ~name:"built eviction addresses conflict with the target" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 7))
    (fun (line, count) ->
      let count = count + 1 in
      let target = Int64.add 0x8800_0000L (Int64.of_int (line * 64)) in
      let set =
        Eviction_set.build Config.xiangshan ~target ~from:0x8004_0000L ~count
      in
      List.length set = count
      && List.for_all
           (fun addr -> Eviction_set.same_set Config.xiangshan ~addr1:addr ~addr2:target)
           set)

(* {1 Plan and tables} *)

let test_plan_contents () =
  let plan = Plan.build Config.boom in
  Alcotest.(check bool) "storage elements discovered" true
    (Plan.storage_element_count plan > 10);
  Alcotest.(check bool) "state bits counted" true (Plan.total_state_bits plan > 0);
  Alcotest.(check bool) "lfb mapped to a logged structure" true
    (Plan.elements_for plan Structure.Lfb <> []);
  Alcotest.(check int) "seven TEE API entries" 7 (List.length plan.Plan.tee_api);
  Alcotest.(check int) "15 access paths in plan" 15 (List.length plan.Plan.paths);
  (* XiangShan's plan maps the miss queue to the LFB role. *)
  let plan_xs = Plan.build Config.xiangshan in
  Alcotest.(check bool) "xs lfb-equivalent found" true
    (Plan.elements_for plan_xs Structure.Lfb <> [])

let test_automation_table () =
  Alcotest.(check int) "seven rows (Table 1)" 7 (List.length Plan.automation_table);
  let automatic =
    List.filter (fun (_, _, a) -> a = Plan.Automatic) Plan.automation_table
  in
  (* Storage-element identification, test assembly, log analysis and
     leakage discovery are automatic — four rows, as in the paper. *)
  Alcotest.(check int) "four automatic steps" 4 (List.length automatic)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_tables_render () =
  let t1 = Tables.table1 () in
  Alcotest.(check bool) "table1 nonempty" true (String.length t1 > 100);
  let t2 = Tables.table2 () in
  Alcotest.(check bool) "table2 mentions the 585-case corpus" true (contains t2 "585");
  Alcotest.(check bool) "table2 lists every access path" true
    (List.for_all (fun p -> contains t2 (Access_path.to_string p)) Access_path.all)

let () =
  Alcotest.run "teesec"
    [
      ( "secret",
        [
          Alcotest.test_case "address tracing" `Quick test_secret_tracing;
          Alcotest.test_case "line registration" `Quick test_secret_register_line;
          Alcotest.test_case "authorization" `Quick test_secret_authorization;
          Alcotest.test_case "derived flag" `Quick test_secret_derived_flag;
        ] );
      ("case", [ Alcotest.test_case "metadata and Table 3 shape" `Quick test_case_metadata ]);
      ( "access_path",
        [
          Alcotest.test_case "inventory" `Quick test_access_path_inventory;
          Alcotest.test_case "permission policies" `Quick test_perm_policies;
        ] );
      ( "gadgets",
        [
          Alcotest.test_case "inventory counts (Table 2)" `Quick test_gadget_inventory;
          Alcotest.test_case "execution-model contracts" `Quick test_exec_model_contracts;
          Alcotest.test_case "model copy isolation" `Quick test_exec_model_copy_isolated;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "all paths assemble" `Quick test_assembler_all_paths_valid;
          Alcotest.test_case "invalid chains rejected" `Quick
            test_assembler_rejects_invalid_chain;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "corpus size is 585" `Quick test_fuzzer_corpus_size;
          Alcotest.test_case "covers all paths" `Quick test_fuzzer_covers_all_paths;
          Alcotest.test_case "grid shape pinned" `Quick test_fuzzer_grid_shape;
          Alcotest.test_case "deterministic" `Quick test_fuzzer_deterministic;
          Alcotest.test_case "parameters well-formed" `Quick test_fuzzer_widths_valid;
          Alcotest.test_case "random draws from grid" `Quick test_fuzzer_random_params;
        ] );
      ( "checker",
        [
          Alcotest.test_case "D1 classification" `Quick test_checker_classifies_d1;
          Alcotest.test_case "D2/D3 classification" `Quick test_checker_classifies_d2_d3;
          Alcotest.test_case "RF cases D4-D8" `Quick test_checker_classifies_rf_cases;
          Alcotest.test_case "trusted contexts are clean" `Quick
            test_checker_trusted_contexts_clean;
          Alcotest.test_case "cache residue unclassified" `Quick
            test_checker_residue_unclassified;
          Alcotest.test_case "derived values only transient" `Quick
            test_checker_derived_only_transient;
          Alcotest.test_case "M2 residue" `Quick test_checker_m2_residue;
          Alcotest.test_case "deduplication" `Quick test_checker_dedupes;
        ] );
      ( "misc",
        [
          Alcotest.test_case "mitigation expansion" `Quick test_mitigation_expansion;
          Alcotest.test_case "params/testcase rendering" `Quick
            test_params_and_testcase_rendering;
          Alcotest.test_case "case strings" `Quick test_case_strings;
          Alcotest.test_case "env errors" `Quick test_env_errors;
          Alcotest.test_case "summary line" `Quick test_summary_line;
          Alcotest.test_case "recommendation candidates" `Quick test_recommend_candidates;
        ] );
      ( "eviction_set",
        [
          Alcotest.test_case "build" `Quick test_eviction_set_build;
          Alcotest.test_case "prime/probe sequences" `Quick test_eviction_set_instrs;
          QCheck_alcotest.to_alcotest prop_eviction_addresses_conflict;
        ] );
      ( "plan",
        [
          Alcotest.test_case "contents" `Quick test_plan_contents;
          Alcotest.test_case "automation table" `Quick test_automation_table;
          Alcotest.test_case "table rendering" `Quick test_tables_render;
        ] );
    ]
