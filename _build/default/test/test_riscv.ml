(* Tests for the RISC-V substrate: words, privilege modes, PMP, CSRs,
   memory, instructions, programs and sv39 page tables. *)

open Riscv

let word = Alcotest.testable Word.pp Int64.equal

(* {1 Word} *)

let test_mask () =
  Alcotest.(check word) "mask 0" 0L (Word.mask 0);
  Alcotest.(check word) "mask 1" 1L (Word.mask 1);
  Alcotest.(check word) "mask 8" 0xFFL (Word.mask 8);
  Alcotest.(check word) "mask 63" Int64.max_int (Word.mask 63);
  Alcotest.(check word) "mask 64" (-1L) (Word.mask 64)

let test_extract () =
  Alcotest.(check word) "low byte" 0xEFL (Word.extract 0xDEADBEEFL ~pos:0 ~len:8);
  Alcotest.(check word) "mid nibble" 0xEL (Word.extract 0xDEADBEEFL ~pos:8 ~len:4);
  Alcotest.(check word) "high bits" 0xDEADL (Word.extract 0xDEADBEEFL ~pos:16 ~len:16);
  Alcotest.(check word) "full" 0xDEADBEEFL (Word.extract 0xDEADBEEFL ~pos:0 ~len:64);
  Alcotest.(check word) "top bit of negative" 1L (Word.extract (-1L) ~pos:63 ~len:1)

let test_sign_extend () =
  Alcotest.(check word) "positive" 0x7FL (Word.sign_extend 0x7FL ~bits:8);
  Alcotest.(check word) "negative byte" (-1L) (Word.sign_extend 0xFFL ~bits:8);
  Alcotest.(check word) "negative 12-bit" (-2048L) (Word.sign_extend 0x800L ~bits:12);
  Alcotest.(check word) "identity 64" 0x123456789ABCDEFL
    (Word.sign_extend 0x123456789ABCDEFL ~bits:64)

let test_align () =
  Alcotest.(check word) "down 64" 0x1000L (Word.align_down 0x103FL ~alignment:64);
  Alcotest.(check word) "already aligned" 0x1000L (Word.align_down 0x1000L ~alignment:64);
  Alcotest.(check bool) "is aligned" true (Word.is_aligned 0x1000L ~alignment:4096);
  Alcotest.(check bool) "not aligned" false (Word.is_aligned 0x1008L ~alignment:4096)

let test_bytes () =
  let w = 0x1122334455667788L in
  Alcotest.(check int) "byte 0" 0x88 (Word.byte_of w ~index:0);
  Alcotest.(check int) "byte 7" 0x11 (Word.byte_of w ~index:7);
  Alcotest.(check word) "set byte 0" 0x11223344556677FFL
    (Word.set_byte w ~index:0 ~byte:0xFF);
  Alcotest.(check word) "set byte 7" 0xAA22334455667788L
    (Word.set_byte w ~index:7 ~byte:0xAA)

let test_splitmix_deterministic () =
  Alcotest.(check word) "deterministic" (Word.splitmix64 42L) (Word.splitmix64 42L);
  Alcotest.(check bool) "distinct inputs differ" true
    (not (Int64.equal (Word.splitmix64 1L) (Word.splitmix64 2L)))

(* {1 Priv} *)

let test_priv () =
  Alcotest.(check bool) "M >= S" true (Priv.geq Priv.Machine Priv.Supervisor);
  Alcotest.(check bool) "S >= U" true (Priv.geq Priv.Supervisor Priv.User);
  Alcotest.(check bool) "U < M" false (Priv.geq Priv.User Priv.Machine);
  Alcotest.(check bool) "reflexive" true (Priv.geq Priv.User Priv.User);
  List.iter
    (fun p ->
      match Priv.of_int (Priv.to_int p) with
      | Some q -> Alcotest.(check bool) "roundtrip" true (Priv.equal p q)
      | None -> Alcotest.fail "of_int failed")
    [ Priv.User; Priv.Supervisor; Priv.Machine ];
  Alcotest.(check (option reject)) "2 is reserved" None (Priv.of_int 2)

(* {1 PMP} *)

let napot base size perm = Pmp.napot_entry ~base ~size ~perm ~locked:false

let test_pmp_napot_roundtrip () =
  List.iter
    (fun (base, size) ->
      let e = napot base size Pmp.read_write in
      let base', size' = Pmp.napot_range e in
      Alcotest.(check word) "base" base base';
      Alcotest.(check int64) "size" (Int64.of_int size) size')
    [ (0x8000_0000L, 8); (0x8000_0000L, 64); (0x8010_0000L, 0x10_0000);
      (0x8800_0000L, 0x1_0000); (0x8000_0000L, 0x8000_0000) ]

let test_pmp_basic_allow_deny () =
  let t = Pmp.create () in
  Pmp.set t 0 (napot 0x8800_0000L 0x1_0000 Pmp.no_access);
  Pmp.set t 15 (napot 0x8000_0000L 0x8000_0000 Pmp.full_access);
  let allows kind addr =
    Pmp.allows t ~priv:Priv.Supervisor ~kind ~addr ~size:8
  in
  Alcotest.(check bool) "host region readable" true (allows Pmp.Read 0x8000_1000L);
  Alcotest.(check bool) "host region writable" true (allows Pmp.Write 0x8000_1000L);
  Alcotest.(check bool) "protected region read denied" false (allows Pmp.Read 0x8800_0000L);
  Alcotest.(check bool) "protected region write denied" false (allows Pmp.Write 0x8800_8000L);
  Alcotest.(check bool) "just below protected ok" true (allows Pmp.Read 0x87FF_FFF8L);
  Alcotest.(check bool) "just above protected ok" true (allows Pmp.Read 0x8801_0000L)

let test_pmp_priority () =
  (* First matching entry wins, even if a later entry would allow. *)
  let t = Pmp.create () in
  Pmp.set t 0 (napot 0x8000_0000L 4096 Pmp.no_access);
  Pmp.set t 1 (napot 0x8000_0000L 0x8000_0000 Pmp.full_access);
  Alcotest.(check bool) "deny entry shadows allow" false
    (Pmp.allows t ~priv:Priv.Supervisor ~kind:Pmp.Read ~addr:0x8000_0100L ~size:8);
  Alcotest.(check bool) "outside deny entry allowed" true
    (Pmp.allows t ~priv:Priv.Supervisor ~kind:Pmp.Read ~addr:0x8000_2000L ~size:8)

let test_pmp_machine_mode () =
  let t = Pmp.create () in
  Pmp.set t 0 (napot 0x8000_0000L 4096 Pmp.no_access);
  Alcotest.(check bool) "machine bypasses unlocked entry" true
    (Pmp.allows t ~priv:Priv.Machine ~kind:Pmp.Write ~addr:0x8000_0000L ~size:8);
  Pmp.set t 0
    (Pmp.napot_entry ~base:0x8000_0000L ~size:4096 ~perm:Pmp.no_access ~locked:true);
  Alcotest.(check bool) "locked entry constrains machine" false
    (Pmp.allows t ~priv:Priv.Machine ~kind:Pmp.Write ~addr:0x8000_0000L ~size:8)

let test_pmp_no_match_default () =
  let t = Pmp.create () in
  (* No entries at all: everything allowed (PMP not implemented). *)
  Alcotest.(check bool) "no entries: S allowed" true
    (Pmp.allows t ~priv:Priv.Supervisor ~kind:Pmp.Read ~addr:0x8000_0000L ~size:8);
  (* One active entry: non-matching S/U accesses are denied; M allowed. *)
  Pmp.set t 0 (napot 0x9000_0000L 4096 Pmp.full_access);
  Alcotest.(check bool) "active entries: S no-match denied" false
    (Pmp.allows t ~priv:Priv.Supervisor ~kind:Pmp.Read ~addr:0x8000_0000L ~size:8);
  Alcotest.(check bool) "active entries: M no-match allowed" true
    (Pmp.allows t ~priv:Priv.Machine ~kind:Pmp.Read ~addr:0x8000_0000L ~size:8)

let test_pmp_partial_match_fails () =
  let t = Pmp.create () in
  Pmp.set t 0 (napot 0x8000_0040L 64 Pmp.full_access);
  (* An 8-byte access straddling into the region only partially matches
     and must fail even though the matching part is allowed. *)
  Alcotest.(check bool) "straddling access denied" false
    (Pmp.allows t ~priv:Priv.Supervisor ~kind:Pmp.Read ~addr:0x8000_003CL ~size:8)

let test_pmp_tor () =
  let t = Pmp.create () in
  Pmp.set t 0 { Pmp.mode = Pmp.Tor; perm = Pmp.read_only; locked = false;
                address = Int64.shift_right_logical 0x8000_1000L 2 };
  Alcotest.(check bool) "inside TOR region" true
    (Pmp.allows t ~priv:Priv.User ~kind:Pmp.Read ~addr:0x8000_0800L ~size:4);
  Alcotest.(check bool) "TOR write denied" false
    (Pmp.allows t ~priv:Priv.User ~kind:Pmp.Write ~addr:0x8000_0800L ~size:4);
  Alcotest.(check bool) "above TOR top denied" false
    (Pmp.allows t ~priv:Priv.User ~kind:Pmp.Read ~addr:0x8000_1000L ~size:4)

let test_pmp_exec_permission () =
  let t = Pmp.create () in
  Pmp.set t 0 (napot 0x8000_0000L 4096 Pmp.read_write);
  Alcotest.(check bool) "execute denied on rw region" false
    (Pmp.allows t ~priv:Priv.User ~kind:Pmp.Execute ~addr:0x8000_0000L ~size:4)

let test_pmp_denied_entry_index () =
  let t = Pmp.create () in
  Pmp.set t 3 (napot 0x8800_0000L 0x1_0000 Pmp.no_access);
  Pmp.set t 15 (napot 0x8000_0000L 0x8000_0000 Pmp.full_access);
  (match Pmp.check t ~priv:Priv.Supervisor ~kind:Pmp.Read ~addr:0x8800_0000L ~size:8 with
  | Pmp.Denied { entry_index = Some 3 } -> ()
  | Pmp.Denied { entry_index } ->
    Alcotest.failf "wrong entry index: %s"
      (match entry_index with Some i -> string_of_int i | None -> "none")
  | Pmp.Allowed -> Alcotest.fail "expected denial")

(* {1 CSR} *)

let test_csr_rw_privilege () =
  let t = Csr.create () in
  (match Csr.write t ~priv:Priv.Machine Csr.Mtvec 0x100L with
  | Ok () -> ()
  | Error () -> Alcotest.fail "machine write should succeed");
  (match Csr.write t ~priv:Priv.Supervisor Csr.Mtvec 0x200L with
  | Error () -> ()
  | Ok () -> Alcotest.fail "supervisor write to M CSR should fail");
  (match Csr.read t ~priv:Priv.Machine Csr.Mtvec with
  | Csr.Ok v -> Alcotest.(check word) "readback" 0x100L v
  | Csr.Illegal_instruction -> Alcotest.fail "machine read should succeed");
  (match Csr.read t ~priv:Priv.User Csr.Mtvec with
  | Csr.Illegal_instruction -> ()
  | Csr.Ok _ -> Alcotest.fail "user read of M CSR should fail")

let test_csr_satp_supervisor () =
  let t = Csr.create () in
  (match Csr.write t ~priv:Priv.Supervisor Csr.Satp 0xABCL with
  | Ok () -> ()
  | Error () -> Alcotest.fail "satp writable from S");
  (match Csr.read t ~priv:Priv.Supervisor Csr.Satp with
  | Csr.Ok v -> Alcotest.(check word) "satp value" 0xABCL v
  | Csr.Illegal_instruction -> Alcotest.fail "satp readable from S");
  (match Csr.write t ~priv:Priv.User Csr.Satp 0L with
  | Error () -> ()
  | Ok () -> Alcotest.fail "satp not writable from U")

let test_csr_counter_views () =
  let t = Csr.create () in
  Csr.bump_counter t 4 ~by:7L;
  (match Csr.read t ~priv:Priv.User (Csr.Hpmcounter 4) with
  | Csr.Ok v -> Alcotest.(check word) "user view aliases machine counter" 7L v
  | Csr.Illegal_instruction -> Alcotest.fail "counters enabled by default");
  (* Counter views are read-only. *)
  (match Csr.write t ~priv:Priv.Machine (Csr.Hpmcounter 4) 0L with
  | Error () -> ()
  | Ok () -> Alcotest.fail "counter views are read-only");
  (* Gating via mcounteren. *)
  Csr.raw_write t Csr.Mcounteren 0L;
  (match Csr.read t ~priv:Priv.User (Csr.Hpmcounter 4) with
  | Csr.Illegal_instruction -> ()
  | Csr.Ok _ -> Alcotest.fail "gated counter should fault");
  (* Machine mode is never gated. *)
  (match Csr.read t ~priv:Priv.Machine (Csr.Mhpmcounter 4) with
  | Csr.Ok v -> Alcotest.(check word) "machine read survives gating" 7L v
  | Csr.Illegal_instruction -> Alcotest.fail "machine read gated?")

let test_csr_reset_counters () =
  let t = Csr.create () in
  List.iter (fun n -> Csr.bump_counter t n ~by:5L) Csr.modelled_counters;
  Csr.reset_counters t;
  List.iter
    (fun n ->
      let id = match n with 0 -> Csr.Mcycle | 2 -> Csr.Minstret | n -> Csr.Mhpmcounter n in
      Alcotest.(check word) (Csr.name id ^ " reset") 0L (Csr.raw_read t id))
    Csr.modelled_counters

let test_csr_raw_unchecked () =
  let t = Csr.create () in
  Csr.raw_write t (Csr.Mhpmcounter 5) 0xFEEDL;
  (* raw_read ignores privilege: this is the datapath read that leaks in
     case M1. *)
  Alcotest.(check word) "raw read bypasses checks" 0xFEEDL
    (Csr.raw_read t (Csr.Mhpmcounter 5))

(* {1 Memory} *)

let test_memory_rw () =
  let m = Memory.create () in
  Memory.write m ~addr:0x1000L ~size:8 0x1122334455667788L;
  Alcotest.(check word) "read back" 0x1122334455667788L
    (Memory.read m ~addr:0x1000L ~size:8);
  Alcotest.(check word) "uninitialised is zero" 0L (Memory.read m ~addr:0x2000L ~size:8);
  Alcotest.(check word) "byte read" 0x88L (Memory.read m ~addr:0x1000L ~size:1);
  Alcotest.(check word) "half read" 0x7788L (Memory.read m ~addr:0x1000L ~size:2);
  Alcotest.(check word) "word read" 0x55667788L (Memory.read m ~addr:0x1000L ~size:4)

let test_memory_misaligned () =
  let m = Memory.create () in
  Memory.write m ~addr:0x1000L ~size:8 0x1122334455667788L;
  Memory.write m ~addr:0x1008L ~size:8 0xAABBCCDDEEFF0011L;
  (* A straddling read assembles bytes from both granules. *)
  Alcotest.(check word) "straddling read" 0xEEFF001111223344L
    (Memory.read m ~addr:0x1004L ~size:8);
  (* A straddling write updates both granules. *)
  Memory.write m ~addr:0x1006L ~size:4 0xDEADBEEFL;
  Alcotest.(check word) "low granule" 0xBEEF334455667788L
    (Memory.read m ~addr:0x1000L ~size:8);
  Alcotest.(check word) "high granule" 0xAABBCCDDEEFFDEADL
    (Memory.read m ~addr:0x1008L ~size:8)

let test_memory_lines () =
  let m = Memory.create () in
  for i = 0 to 7 do
    Memory.write m ~addr:(Int64.of_int (0x1000 + (i * 8))) ~size:8 (Int64.of_int (i + 1))
  done;
  let line = Memory.read_line m ~addr:0x1020L in
  Alcotest.(check int) "line length" 8 (Array.length line);
  Alcotest.(check word) "word 0" 1L line.(0);
  Alcotest.(check word) "word 7" 8L line.(7);
  let line2 = Array.map (Int64.mul 10L) line in
  Memory.write_line m ~addr:0x2000L line2;
  Alcotest.(check word) "written line" 30L (Memory.read m ~addr:0x2010L ~size:8)

let test_memory_fill () =
  let m = Memory.create () in
  Memory.fill m ~addr:0x3000L ~size:128L ~value:0xAAL;
  Alcotest.(check word) "first" 0xAAL (Memory.read m ~addr:0x3000L ~size:8);
  Alcotest.(check word) "last" 0xAAL (Memory.read m ~addr:0x3078L ~size:8);
  Alcotest.(check word) "beyond untouched" 0L (Memory.read m ~addr:0x3080L ~size:8)

(* {1 Instr and Program} *)

let test_instr_pp () =
  Alcotest.(check string) "load" "ld x15, 0x8(x14)"
    (Instr.to_string (Instr.ld Instr.a5 Instr.a4 8L));
  Alcotest.(check string) "branch" "beq x5, x6, loop"
    (Instr.to_string (Instr.Branch (Instr.Eq, Instr.t0, Instr.t1, "loop")));
  Alcotest.(check string) "csr" "csrr x10, satp"
    (Instr.to_string (Instr.Csrr (Instr.a0, Csr.Satp)))

let test_width_bytes () =
  Alcotest.(check int) "byte" 1 (Instr.width_bytes Instr.Byte);
  Alcotest.(check int) "half" 2 (Instr.width_bytes Instr.Half);
  Alcotest.(check int) "word" 4 (Instr.width_bytes Instr.Word_);
  Alcotest.(check int) "double" 8 (Instr.width_bytes Instr.Double)

let test_program_layout () =
  let p = Program.of_instrs ~base:0x8000_0000L [ Instr.Nop; Instr.Fence; Instr.Halt ] in
  Alcotest.(check int) "length" 3 (Program.length p);
  (match Program.fetch p ~pc:0x8000_0004L with
  | Some Instr.Fence -> ()
  | _ -> Alcotest.fail "expected fence at +4");
  Alcotest.(check bool) "past end" true (Program.fetch p ~pc:0x8000_000CL = None);
  Alcotest.(check bool) "below base" true (Program.fetch p ~pc:0x7FFF_FFFCL = None);
  Alcotest.(check bool) "unaligned" true (Program.fetch p ~pc:0x8000_0002L = None)

let test_program_labels () =
  let p =
    Program.assemble ~base:0x8000_0000L
      [
        Program.Instr (Instr.Branch (Instr.Eq, 0, 0, "end"));
        Program.Instr Instr.Nop;
        Program.Label "end";
        Program.Instr Instr.Halt;
      ]
  in
  Alcotest.(check word) "label resolves after nop" 0x8000_0008L (Program.resolve p "end")

let test_program_errors () =
  Alcotest.check_raises "undefined label"
    (Invalid_argument "Program.assemble: undefined label nowhere") (fun () ->
      ignore (Program.assemble ~base:0L [ Program.Instr (Instr.Jal "nowhere") ]));
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Program.assemble: duplicate label here") (fun () ->
      ignore (Program.assemble ~base:0L [ Program.Label "here"; Program.Label "here" ]))

(* {1 Page tables} *)

let test_pte_roundtrip () =
  let perm = { Page_table.read = true; write = true; execute = false; user = true } in
  let leaf = Page_table.Leaf { paddr = 0x8004_0000L; perm } in
  (match Page_table.decode_pte (Page_table.encode_pte leaf) with
  | Page_table.Leaf { paddr; perm = p } ->
    Alcotest.(check word) "paddr" 0x8004_0000L paddr;
    Alcotest.(check bool) "read" true p.Page_table.read;
    Alcotest.(check bool) "write" true p.Page_table.write;
    Alcotest.(check bool) "exec" false p.Page_table.execute
  | _ -> Alcotest.fail "expected leaf");
  (match Page_table.decode_pte (Page_table.encode_pte (Page_table.Pointer 0x8020_1000L)) with
  | Page_table.Pointer base -> Alcotest.(check word) "pointer base" 0x8020_1000L base
  | _ -> Alcotest.fail "expected pointer");
  (match Page_table.decode_pte 0L with
  | Page_table.Invalid -> ()
  | _ -> Alcotest.fail "zero PTE is invalid")

let test_satp_roundtrip () =
  let root = 0x8020_0000L in
  (match Page_table.root_of_satp (Page_table.satp_of_root root) with
  | Some r -> Alcotest.(check word) "root roundtrip" root r
  | None -> Alcotest.fail "satp should decode");
  Alcotest.(check bool) "bare satp" true (Page_table.root_of_satp 0L = None)

let test_vpn_slicing () =
  let vaddr = Int64.logor (Int64.shift_left 3L 30)
                (Int64.logor (Int64.shift_left 5L 21) (Int64.shift_left 7L 12)) in
  Alcotest.(check int) "vpn2" 3 (Page_table.vpn vaddr ~level:2);
  Alcotest.(check int) "vpn1" 5 (Page_table.vpn vaddr ~level:1);
  Alcotest.(check int) "vpn0" 7 (Page_table.vpn vaddr ~level:0)

let test_map_and_walk () =
  let mem = Memory.create () in
  let b = Page_table.create_builder mem ~table_region:0x8020_0000L () in
  Memory.write mem ~addr:0x8004_0100L ~size:8 0xFACEL;
  Page_table.map b ~vaddr:0x4000_0000L ~paddr:0x8004_0000L ~perm:Page_table.supervisor_rw;
  (match Page_table.walk mem ~root:(Page_table.root b) ~vaddr:0x4000_0100L with
  | Page_table.Translated { paddr; perm; steps } ->
    Alcotest.(check word) "translated address" 0x8004_0100L paddr;
    Alcotest.(check bool) "readable" true perm.Page_table.read;
    Alcotest.(check int) "three-level walk" 3 (List.length steps)
  | Page_table.Fault _ -> Alcotest.fail "walk should succeed");
  (match Page_table.walk mem ~root:(Page_table.root b) ~vaddr:0x4020_0000L with
  | Page_table.Fault _ -> ()
  | Page_table.Translated _ -> Alcotest.fail "unmapped vaddr should fault")

let test_map_range () =
  let mem = Memory.create () in
  let b = Page_table.create_builder mem ~table_region:0x8020_0000L () in
  Page_table.map_range b ~vaddr:0x4000_0000L ~paddr:0x8004_0000L ~size:16384L
    ~perm:Page_table.user_rw;
  List.iter
    (fun page ->
      let vaddr = Int64.add 0x4000_0000L (Int64.of_int (page * 4096)) in
      match Page_table.walk mem ~root:(Page_table.root b) ~vaddr with
      | Page_table.Translated { paddr; _ } ->
        Alcotest.(check word)
          (Printf.sprintf "page %d" page)
          (Int64.add 0x8004_0000L (Int64.of_int (page * 4096)))
          paddr
      | Page_table.Fault _ -> Alcotest.failf "page %d should map" page)
    [ 0; 1; 2; 3 ]

(* {1 Property-based tests} *)

let prop_extract_of_mask =
  QCheck.Test.make ~name:"extract of set_byte recovers the byte" ~count:200
    QCheck.(pair int64 (pair (int_bound 7) (int_bound 255)))
    (fun (w, (index, byte)) ->
      Word.byte_of (Word.set_byte w ~index ~byte) ~index = byte)

let prop_align_down_le =
  QCheck.Test.make ~name:"align_down is <= and aligned" ~count:200
    QCheck.(pair (map Int64.abs int64) (int_bound 3))
    (fun (w, k) ->
      let alignment = 1 lsl (3 + k) in
      let a = Word.align_down w ~alignment in
      Int64.unsigned_compare a w <= 0 && Word.is_aligned a ~alignment)

let prop_napot_contains_base =
  QCheck.Test.make ~name:"napot region covers its base and size" ~count:100
    QCheck.(int_bound 10)
    (fun k ->
      let size = 64 lsl k in
      let base = Int64.of_int (0x4000_0000 + (size * 3)) in
      let base = Word.align_down base ~alignment:size in
      let t = Pmp.create () in
      Pmp.set t 0 (napot base size Pmp.full_access);
      Pmp.allows t ~priv:Priv.User ~kind:Pmp.Read ~addr:base ~size:8
      && Pmp.allows t ~priv:Priv.User ~kind:Pmp.Read
           ~addr:(Int64.add base (Int64.of_int (size - 8)))
           ~size:8
      && not
           (Pmp.allows t ~priv:Priv.User ~kind:Pmp.Read
              ~addr:(Int64.add base (Int64.of_int size))
              ~size:8))

let prop_memory_rw_roundtrip =
  QCheck.Test.make ~name:"memory read-after-write roundtrip" ~count:200
    QCheck.(pair int64 (pair (map Int64.abs int64) (int_bound 3)))
    (fun (v, (addr, k)) ->
      let size = 1 lsl k in
      let addr = Int64.logand addr 0xFFFF_FFFFL in
      let m = Memory.create () in
      Memory.write m ~addr ~size v;
      Int64.equal (Memory.read m ~addr ~size)
        (if size = 8 then v else Word.extract v ~pos:0 ~len:(size * 8)))

let prop_walk_matches_mapping =
  QCheck.Test.make ~name:"page walk returns the mapped frame" ~count:50
    QCheck.(pair (int_bound 100) (int_bound 4095))
    (fun (page, offset) ->
      let mem = Memory.create () in
      let b = Page_table.create_builder mem ~table_region:0x8020_0000L () in
      let vaddr = Int64.of_int (0x4000_0000 + (page * 4096)) in
      let paddr = Int64.of_int (0x8004_0000 + (page * 4096)) in
      Page_table.map b ~vaddr ~paddr ~perm:Page_table.user_rw;
      match
        Page_table.walk mem ~root:(Page_table.root b)
          ~vaddr:(Int64.add vaddr (Int64.of_int offset))
      with
      | Page_table.Translated { paddr = got; _ } ->
        Int64.equal got (Int64.add paddr (Int64.of_int offset))
      | Page_table.Fault _ -> false)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_extract_of_mask;
      prop_align_down_le;
      prop_napot_contains_base;
      prop_memory_rw_roundtrip;
      prop_walk_matches_mapping;
    ]

let () =
  Alcotest.run "riscv"
    [
      ( "word",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
          Alcotest.test_case "alignment" `Quick test_align;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "splitmix determinism" `Quick test_splitmix_deterministic;
        ] );
      ("priv", [ Alcotest.test_case "ordering and roundtrip" `Quick test_priv ]);
      ( "pmp",
        [
          Alcotest.test_case "napot roundtrip" `Quick test_pmp_napot_roundtrip;
          Alcotest.test_case "allow/deny" `Quick test_pmp_basic_allow_deny;
          Alcotest.test_case "priority" `Quick test_pmp_priority;
          Alcotest.test_case "machine mode and locking" `Quick test_pmp_machine_mode;
          Alcotest.test_case "no-match default" `Quick test_pmp_no_match_default;
          Alcotest.test_case "partial match fails" `Quick test_pmp_partial_match_fails;
          Alcotest.test_case "TOR regions" `Quick test_pmp_tor;
          Alcotest.test_case "execute permission" `Quick test_pmp_exec_permission;
          Alcotest.test_case "denied entry index" `Quick test_pmp_denied_entry_index;
        ] );
      ( "csr",
        [
          Alcotest.test_case "privilege checks" `Quick test_csr_rw_privilege;
          Alcotest.test_case "satp from supervisor" `Quick test_csr_satp_supervisor;
          Alcotest.test_case "counter views and gating" `Quick test_csr_counter_views;
          Alcotest.test_case "reset counters" `Quick test_csr_reset_counters;
          Alcotest.test_case "raw access is unchecked" `Quick test_csr_raw_unchecked;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "misaligned" `Quick test_memory_misaligned;
          Alcotest.test_case "lines" `Quick test_memory_lines;
          Alcotest.test_case "fill" `Quick test_memory_fill;
        ] );
      ( "instr",
        [
          Alcotest.test_case "pretty printing" `Quick test_instr_pp;
          Alcotest.test_case "width bytes" `Quick test_width_bytes;
        ] );
      ( "program",
        [
          Alcotest.test_case "layout and fetch" `Quick test_program_layout;
          Alcotest.test_case "labels" `Quick test_program_labels;
          Alcotest.test_case "assembly errors" `Quick test_program_errors;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "pte roundtrip" `Quick test_pte_roundtrip;
          Alcotest.test_case "satp roundtrip" `Quick test_satp_roundtrip;
          Alcotest.test_case "vpn slicing" `Quick test_vpn_slicing;
          Alcotest.test_case "map and walk" `Quick test_map_and_walk;
          Alcotest.test_case "map range" `Quick test_map_range;
        ] );
      ("properties", properties);
    ]
