(* Tests for execution contexts and the simulation log. *)

module Log = Simlog.Log
module Structure = Simlog.Structure
module Exec_context = Simlog.Exec_context

let test_context_trust () =
  Alcotest.(check bool) "enclave trusts itself" true
    (Exec_context.is_trusted_for (Exec_context.Enclave 1) ~enclave_id:1);
  Alcotest.(check bool) "other enclave untrusted" false
    (Exec_context.is_trusted_for (Exec_context.Enclave 2) ~enclave_id:1);
  Alcotest.(check bool) "monitor trusted" true
    (Exec_context.is_trusted_for Exec_context.Monitor ~enclave_id:1);
  Alcotest.(check bool) "host untrusted" false
    (Exec_context.is_trusted_for (Exec_context.Host Riscv.Priv.Supervisor) ~enclave_id:1)

let test_context_equal () =
  Alcotest.(check bool) "host S = host S" true
    (Exec_context.equal (Exec_context.Host Riscv.Priv.Supervisor)
       (Exec_context.Host Riscv.Priv.Supervisor));
  Alcotest.(check bool) "host S <> host U" false
    (Exec_context.equal (Exec_context.Host Riscv.Priv.Supervisor)
       (Exec_context.Host Riscv.Priv.User));
  Alcotest.(check bool) "enclave ids" false
    (Exec_context.equal (Exec_context.Enclave 0) (Exec_context.Enclave 1))

let test_structure_metadata () =
  Alcotest.(check int) "15 structures" 15 (List.length Structure.all);
  Alcotest.(check bool) "lfb holds data" true (Structure.holds_data Structure.Lfb);
  Alcotest.(check bool) "ubtb is metadata" false (Structure.holds_data Structure.Ubtb);
  Alcotest.(check bool) "hpm is metadata" false
    (Structure.holds_data Structure.Hpm_counters);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Structure.to_string s ^ " has netlist hints")
        true
        (Structure.netlist_hint s <> []))
    Structure.all

let host = Exec_context.Host Riscv.Priv.Supervisor

let test_log_record_and_search () =
  let log = Log.create () in
  Log.record log ~cycle:10 ~ctx:host
    (Log.Write
       {
         structure = Structure.Lfb;
         entries = [ Log.entry ~slot:0 ~addr:0x88000000L 0xFACEL ];
         origin = Log.Prefetch;
       });
  Log.record log ~cycle:20 ~ctx:(Exec_context.Enclave 0)
    (Log.Snapshot
       { structure = Structure.L1d_data; entries = [ Log.entry 0xBEEFL ] });
  Alcotest.(check int) "length" 2 (Log.length log);
  Alcotest.(check int) "occurrences of FACE" 1 (List.length (Log.occurrences log 0xFACEL));
  Alcotest.(check int) "occurrences of BEEF" 1 (List.length (Log.occurrences log 0xBEEFL));
  Alcotest.(check int) "no occurrences" 0 (List.length (Log.occurrences log 0x1234L));
  Alcotest.(check int) "writes_of" 1 (List.length (Log.writes_of log))

let test_log_order () =
  let log = Log.create () in
  List.iter
    (fun c -> Log.record log ~cycle:c ~ctx:host (Log.Commit { pc = Int64.of_int c; instr = "nop" }))
    [ 1; 2; 3 ];
  let cycles = List.map (fun r -> r.Log.cycle) (Log.to_list log) in
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] cycles

let test_last_commit_before () =
  let log = Log.create () in
  Log.record log ~cycle:5 ~ctx:host (Log.Commit { pc = 0x100L; instr = "a" });
  Log.record log ~cycle:15 ~ctx:host (Log.Commit { pc = 0x104L; instr = "b" });
  (match Log.last_commit_before log ~cycle:10 with
  | Some pc -> Alcotest.(check int64) "first commit" 0x100L pc
  | None -> Alcotest.fail "expected a commit");
  (match Log.last_commit_before log ~cycle:20 with
  | Some pc -> Alcotest.(check int64) "second commit" 0x104L pc
  | None -> Alcotest.fail "expected a commit");
  Alcotest.(check bool) "none before first" true
    (Log.last_commit_before log ~cycle:2 = None)

let test_contains_value_scopes () =
  (* Mode switches, commits and exceptions never match data searches. *)
  let r cycle event = { Log.cycle; ctx = host; event } in
  Alcotest.(check bool) "mode switch" false
    (Log.contains_value
       (r 1 (Log.Mode_switch { from_ctx = host; to_ctx = Exec_context.Monitor }))
       0L);
  Alcotest.(check bool) "commit" false
    (Log.contains_value (r 1 (Log.Commit { pc = 0L; instr = "nop" })) 0L);
  Alcotest.(check bool) "exception" false
    (Log.contains_value (r 1 (Log.Exception_raised { cause = "x"; pc = 0L })) 0L)

let test_origin_strings () =
  let origins =
    [
      Log.Explicit_load; Log.Explicit_store; Log.Prefetch; Log.Ptw_walk;
      Log.Store_drain; Log.Memset_destroy; Log.Csr_read; Log.Context_save;
      Log.Refill; Log.Branch_exec; Log.Writeback;
    ]
  in
  let strings = List.map Log.origin_to_string origins in
  Alcotest.(check int) "all distinct" (List.length origins)
    (List.length (List.sort_uniq compare strings))

(* {1 Serialisation} *)

module Serialize = Simlog.Serialize

let sample_log () =
  let log = Log.create () in
  Log.record log ~cycle:1 ~ctx:host
    (Log.Write
       {
         structure = Structure.Lfb;
         entries =
           [
             Log.entry ~slot:3 ~addr:0x8800_0000L ~note:"a note, with %weird~chars" 0xFACEL;
             Log.entry 0xBEEFL;
           ];
         origin = Log.Prefetch;
       });
  Log.record log ~cycle:2 ~ctx:(Exec_context.Enclave 1)
    (Log.Snapshot { structure = Structure.Ubtb; entries = [ Log.entry ~note:"owner=enclave-1" 1L ] });
  Log.record log ~cycle:3 ~ctx:Exec_context.Monitor
    (Log.Mode_switch { from_ctx = Exec_context.Monitor; to_ctx = host });
  Log.record log ~cycle:4 ~ctx:host (Log.Commit { pc = 0x8000_0000L; instr = "ld x5, 0x0(x6)" });
  Log.record log ~cycle:5 ~ctx:host
    (Log.Exception_raised { cause = "load-access-fault"; pc = 0x8000_0004L });
  log

let test_serialize_roundtrip () =
  let log = sample_log () in
  let text = Serialize.to_string log in
  match Serialize.parse_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok parsed ->
    Alcotest.(check int) "record count" (Log.length log) (Log.length parsed);
    Alcotest.(check string) "round-trips byte for byte" text (Serialize.to_string parsed);
    (* Semantic checks survive the trip. *)
    Alcotest.(check int) "occurrences preserved"
      (List.length (Log.occurrences log 0xFACEL))
      (List.length (Log.occurrences parsed 0xFACEL));
    (match Log.last_commit_before parsed ~cycle:10 with
    | Some pc -> Alcotest.(check int64) "commit pc" 0x8000_0000L pc
    | None -> Alcotest.fail "commit lost")

let test_serialize_file_roundtrip () =
  let log = sample_log () in
  let path = Filename.temp_file "teesec" ".simlog" in
  Serialize.save ~path log;
  (match Serialize.load ~path with
  | Ok parsed -> Alcotest.(check int) "file round-trip" (Log.length log) (Log.length parsed)
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove path

let test_serialize_rejects_garbage () =
  (match Serialize.parse_string "W\tnot-a-number\thost-S" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Serialize.parse_string "X\t1\thost-S\tfoo" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown record kind accepted"

let test_escape_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("escape " ^ s) s (Serialize.unescape (Serialize.escape s)))
    [ ""; "plain"; "with space"; "tab\there"; "100%"; "a,b,c"; "~tilde~"; "csrr hpmcounter4" ]

let test_parsers () =
  List.iter
    (fun ctx ->
      match Exec_context.of_string (Exec_context.to_string ctx) with
      | Some c -> Alcotest.(check bool) "ctx roundtrip" true (Exec_context.equal c ctx)
      | None -> Alcotest.fail "ctx parse failed")
    [ host; Exec_context.Host Riscv.Priv.User; Exec_context.Enclave 0;
      Exec_context.Enclave 7; Exec_context.Monitor ];
  Alcotest.(check bool) "bad ctx" true (Exec_context.of_string "hostess" = None);
  List.iter
    (fun s ->
      match Structure.of_string (Structure.to_string s) with
      | Some s' -> Alcotest.(check bool) "structure roundtrip" true (Structure.equal s s')
      | None -> Alcotest.fail "structure parse failed")
    Structure.all;
  Alcotest.(check bool) "bad structure" true (Structure.of_string "l3-cache" = None);
  Alcotest.(check bool) "origin roundtrip" true
    (Log.origin_of_string (Log.origin_to_string Log.Memset_destroy) = Some Log.Memset_destroy);
  Alcotest.(check bool) "bad origin" true (Log.origin_of_string "teleport" = None)

module Stats = Simlog.Stats

let test_stats () =
  let stats = Stats.of_log (sample_log ()) in
  Alcotest.(check int) "records" 5 stats.Stats.records;
  Alcotest.(check int) "writes" 1 stats.Stats.writes;
  Alcotest.(check int) "snapshots" 1 stats.Stats.snapshots;
  Alcotest.(check int) "commits" 1 stats.Stats.commits;
  Alcotest.(check int) "exceptions" 1 stats.Stats.exceptions;
  Alcotest.(check int) "mode switches" 1 stats.Stats.mode_switches;
  Alcotest.(check int) "first cycle" 1 stats.Stats.first_cycle;
  Alcotest.(check int) "last cycle" 5 stats.Stats.last_cycle;
  Alcotest.(check bool) "lfb counted" true
    (List.mem_assoc Structure.Lfb stats.Stats.by_structure);
  Alcotest.(check bool) "prefetch provenance counted" true
    (List.mem_assoc "prefetch" stats.Stats.by_origin)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialisation round-trips arbitrary writes" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 10)
        (pair small_nat (pair int64 (string_gen_of_size (Gen.int_range 0 12) Gen.printable))))
    (fun records ->
      let log = Log.create () in
      List.iteri
        (fun i (slot, (data, note)) ->
          Log.record log ~cycle:i ~ctx:host
            (Log.Write
               {
                 structure = Structure.Reg_file;
                 entries = [ Log.entry ~slot ~note data ];
                 origin = Log.Writeback;
               }))
        records;
      match Serialize.parse_string (Serialize.to_string log) with
      | Ok parsed -> Serialize.to_string parsed = Serialize.to_string log
      | Error _ -> false)

let prop_occurrences_complete =
  QCheck.Test.make ~name:"occurrences finds every inserted value" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) int64)
    (fun values ->
      let log = Log.create () in
      List.iteri
        (fun i v ->
          Log.record log ~cycle:i ~ctx:host
            (Log.Write
               { structure = Structure.Reg_file; entries = [ Log.entry v ]; origin = Log.Writeback }))
        values;
      List.for_all (fun v -> Log.occurrences log v <> []) values)

let () =
  Alcotest.run "simlog"
    [
      ( "exec_context",
        [
          Alcotest.test_case "trust relation" `Quick test_context_trust;
          Alcotest.test_case "equality" `Quick test_context_equal;
        ] );
      ("structure", [ Alcotest.test_case "metadata" `Quick test_structure_metadata ]);
      ( "log",
        [
          Alcotest.test_case "record and search" `Quick test_log_record_and_search;
          Alcotest.test_case "chronological order" `Quick test_log_order;
          Alcotest.test_case "last commit before" `Quick test_last_commit_before;
          Alcotest.test_case "non-data events don't match" `Quick test_contains_value_scopes;
          Alcotest.test_case "origin strings distinct" `Quick test_origin_strings;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "round-trip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_serialize_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
          Alcotest.test_case "note escaping" `Quick test_escape_roundtrip;
          Alcotest.test_case "string parsers" `Quick test_parsers;
        ] );
      ("stats", [ Alcotest.test_case "summary" `Quick test_stats ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_occurrences_complete;
          QCheck_alcotest.to_alcotest prop_serialize_roundtrip;
        ] );
    ]
