lib/simlog/structure.ml: Format List Stdlib
