lib/simlog/serialize.mli: Import Log
