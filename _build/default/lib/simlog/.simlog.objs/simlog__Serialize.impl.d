lib/simlog/serialize.ml: Buffer Char Exec_context Import Int64 List Log Option Printf String Structure
