lib/simlog/structure.mli: Format
