lib/simlog/log.mli: Exec_context Format Import Structure Word
