lib/simlog/stats.ml: Format Hashtbl Import List Log Option Structure
