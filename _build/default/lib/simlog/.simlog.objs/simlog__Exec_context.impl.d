lib/simlog/exec_context.ml: Format Option Printf Riscv String
