lib/simlog/stats.mli: Format Import Log Structure
