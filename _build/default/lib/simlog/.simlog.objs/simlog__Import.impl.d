lib/simlog/import.ml: Riscv
