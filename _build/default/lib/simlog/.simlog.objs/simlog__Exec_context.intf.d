lib/simlog/exec_context.mli: Format Riscv
