lib/simlog/log.ml: Exec_context Format Import Int64 List Option Structure Word
