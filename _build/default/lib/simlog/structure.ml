type t =
  | Reg_file
  | L1i_data
  | L1d_data
  | L2_data
  | Lfb
  | Store_buffer
  | Store_queue
  | Load_queue
  | Dtlb
  | Ptw_cache
  | Ubtb
  | Ftb
  | Hpm_counters
  | Wb_buffer
  | Prefetcher

let all =
  [
    Reg_file;
    L1i_data;
    L1d_data;
    L2_data;
    Lfb;
    Store_buffer;
    Store_queue;
    Load_queue;
    Dtlb;
    Ptw_cache;
    Ubtb;
    Ftb;
    Hpm_counters;
    Wb_buffer;
    Prefetcher;
  ]

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let to_string = function
  | Reg_file -> "register-file"
  | L1i_data -> "l1i-cache"
  | L1d_data -> "l1d-cache"
  | L2_data -> "l2-cache"
  | Lfb -> "line-fill-buffer"
  | Store_buffer -> "store-buffer"
  | Store_queue -> "store-queue"
  | Load_queue -> "load-queue"
  | Dtlb -> "dtlb"
  | Ptw_cache -> "ptw-cache"
  | Ubtb -> "ubtb"
  | Ftb -> "ftb"
  | Hpm_counters -> "hpm-counters"
  | Wb_buffer -> "wb-buffer"
  | Prefetcher -> "prefetcher"

let of_string s = List.find_opt (fun t -> to_string t = s) all

let pp fmt t = Format.pp_print_string fmt (to_string t)

let netlist_hint = function
  | Reg_file -> [ "regfile" ]
  | L1i_data -> [ "icache_data" ]
  | L1d_data -> [ "dcache.data_array" ]
  | L2_data -> [ "l2" ]
  | Lfb -> [ "lfb"; "miss_queue" ]
  | Store_buffer -> [ "sbuffer" ]
  | Store_queue -> [ "store_queue" ]
  | Load_queue -> [ "load_queue" ]
  | Dtlb -> [ "dtlb" ]
  | Ptw_cache -> [ "ptw_cache" ]
  | Ubtb -> [ "ubtb"; "btb" ]
  | Ftb -> [ "ftb" ]
  | Hpm_counters -> [ "hpm_counters" ]
  | Wb_buffer -> [ "wb_buffer"; "wb_queue" ]
  | Prefetcher -> [ "prefetcher" ]

let holds_data = function
  | Reg_file | L1i_data | L1d_data | L2_data | Lfb | Store_buffer | Store_queue
  | Load_queue | Wb_buffer ->
    true
  | Dtlb | Ptw_cache | Ubtb | Ftb | Hpm_counters | Prefetcher -> false
