(* Shared aliases into the RISC-V substrate. *)
module Word = Riscv.Word
module Priv = Riscv.Priv
