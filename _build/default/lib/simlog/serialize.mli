open! Import

(** Simulation-log serialisation.

    The artifact workflow writes the instrumented simulation output to a
    [SimLog.txt] file and runs the checker over it as a separate step.
    This module provides that interchange format: a line-oriented,
    tab-separated rendering of {!Log.record}s that round-trips exactly.

    Line shapes (fields are tab-separated; [~] marks an absent optional
    field; notes are percent-escaped):

    {v
    W <cycle> <ctx> <structure> <origin> <entry>...
    S <cycle> <ctx> <structure> <entry>...
    M <cycle> <ctx> <from-ctx> <to-ctx>
    C <cycle> <ctx> <pc> <instr>
    E <cycle> <ctx> <pc> <cause>
    v}

    where an entry is [<slot>,<addr|~>,<data>,<note>]. *)

(** [write_channel oc log] writes the whole log, one record per line. *)
val write_channel : out_channel -> Log.t -> unit

(** [to_string log] is the serialised log. *)
val to_string : Log.t -> string

(** [save ~path log] writes the log to a file. *)
val save : path:string -> Log.t -> unit

(** [parse_string s] rebuilds a log; [Error line_no] points at the first
    malformed line. *)
val parse_string : string -> (Log.t, string) result

(** [load ~path] reads a log file. *)
val load : path:string -> (Log.t, string) result

(** [escape] / [unescape] are the note encoders (exposed for tests). *)
val escape : string -> string

val unescape : string -> string
