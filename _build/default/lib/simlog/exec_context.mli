(** Software execution contexts.

    TEESec's security principles are phrased in terms of who is running:
    principle P1 forbids enclave data in the microarchitectural state
    whenever the CPU is {e not} in trusted enclave execution mode.  Every
    simulation-log record is therefore stamped with the context that was
    architecturally executing at that cycle. *)

type t =
  | Host of Riscv.Priv.t  (** Untrusted host user or supervisor code. *)
  | Enclave of int  (** Enclave with the given id. *)
  | Monitor  (** The Keystone-style security monitor (machine mode). *)

val equal : t -> t -> bool

(** [is_trusted_for t ~enclave_id] is true when context [t] is allowed to
    observe data belonging to [enclave_id]: the enclave itself and the
    security monitor. *)
val is_trusted_for : t -> enclave_id:int -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_string s] parses the rendering of [to_string]. *)
val of_string : string -> t option
