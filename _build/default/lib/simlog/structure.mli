(** Identifiers for logged microarchitectural structures.

    One constructor per storage element the verification plan wants
    visibility into.  The names line up with the storage elements the
    netlist memory pass discovers (see {!Netlist.Designs}); the mapping is
    established in the plan. *)

type t =
  | Reg_file  (** Physical integer register file. *)
  | L1i_data  (** Instruction cache: holds code, a P1 target too. *)
  | L1d_data
  | L2_data
  | Lfb  (** Line-fill buffer (BOOM) / miss queue (XiangShan). *)
  | Store_buffer  (** Committed-store buffer (XiangShan sbuffer). *)
  | Store_queue
  | Load_queue
  | Dtlb
  | Ptw_cache
  | Ubtb
  | Ftb
  | Hpm_counters
  | Wb_buffer  (** Write-back buffer between L1D and L2. *)
  | Prefetcher  (** Next-line prefetcher request register. *)

val all : t list
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string

(** [of_string s] inverts [to_string]. *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** [netlist_hint t] is the substring to look for in netlist storage
    element paths when cross-referencing the plan (e.g. [Lfb] matches
    both BOOM's ["lfb"] and XiangShan's ["miss_queue"]). *)
val netlist_hint : t -> string list

(** [holds_data t] distinguishes structures that can contain enclave data
    verbatim (P1 targets) from the ones that only carry metadata (P2
    targets: branch predictors, performance counters, prefetcher
    state). *)
val holds_data : t -> bool
