type t = Host of Riscv.Priv.t | Enclave of int | Monitor

let equal a b =
  match (a, b) with
  | Host p, Host q -> Riscv.Priv.equal p q
  | Enclave i, Enclave j -> i = j
  | Monitor, Monitor -> true
  | (Host _ | Enclave _ | Monitor), _ -> false

let is_trusted_for t ~enclave_id =
  match t with
  | Enclave i -> i = enclave_id
  | Monitor -> true
  | Host _ -> false

let to_string = function
  | Host p -> Printf.sprintf "host-%s" (Riscv.Priv.to_string p)
  | Enclave i -> Printf.sprintf "enclave-%d" i
  | Monitor -> "monitor"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_string s =
  match s with
  | "monitor" -> Some Monitor
  | "host-U" -> Some (Host Riscv.Priv.User)
  | "host-S" -> Some (Host Riscv.Priv.Supervisor)
  | "host-M" -> Some (Host Riscv.Priv.Machine)
  | _ ->
    let prefix = "enclave-" in
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      int_of_string_opt (String.sub s n (String.length s - n))
      |> Option.map (fun i -> Enclave i)
    else None
