open! Import

(** Enclave-private virtual memory (Eyrie-style runtime).

    Keystone enclaves manage their own sv39 page tables inside their
    region.  This module builds them: the region is identity-mapped, and
    — because the enclave is untrusted from everyone else's perspective —
    the enclave may map {e arbitrary} physical addresses into its address
    space ({!map_extra}); only PMP stands between such a mapping and host
    or monitor memory, which is exactly the setting of leakage case D7.

    Table pages live inside the enclave region (offset 0xA000..0xDFFF:
    root, one level-1 table and up to two level-0 tables), clear of the
    secret line at +0x8000 and the tail line the destroy memset drags
    through the LFB.

    Enabling VM for an enclave ({!Security_monitor.set_enclave_satp})
    makes its execution exercise the TLB and page-table walker, and —
    since nothing flushes the TLB on a context switch — leaves enclave
    translations behind as residue the checker can observe. *)

type t

(** Byte offset of the table pages inside the enclave region. *)
val table_offset : int

(** [build machine enclave] identity-maps the whole enclave region with
    full user permissions. *)
val build : Machine.t -> Enclave.t -> t

(** [map_extra t ~vaddr ~paddr] installs an attacker-chosen 4-KiB
    mapping (both addresses page-aligned). *)
val map_extra : t -> vaddr:Word.t -> paddr:Word.t -> unit

(** [satp t] is the value to install when entering the enclave. *)
val satp : t -> Word.t

val root : t -> Word.t
