(* Shared aliases into the substrate libraries. *)
module Word = Riscv.Word
module Priv = Riscv.Priv
module Pmp = Riscv.Pmp
module Csr = Riscv.Csr
module Memory = Riscv.Memory
module Instr = Riscv.Instr
module Program = Riscv.Program
module Page_table = Riscv.Page_table
module Log = Simlog.Log
module Structure = Simlog.Structure
module Exec_context = Simlog.Exec_context
module Machine = Uarch.Machine
module Config = Uarch.Config
module Mitigation = Uarch.Mitigation
