lib/tee/sbi.ml: Format Import Int64
