lib/tee/memory_layout.mli: Import Word
