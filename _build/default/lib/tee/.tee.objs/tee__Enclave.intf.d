lib/tee/enclave.mli: Format Import Word
