lib/tee/sbi.mli: Format Import Word
