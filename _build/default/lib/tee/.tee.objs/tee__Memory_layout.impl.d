lib/tee/memory_layout.ml: Import Int64 Printf
