lib/tee/enclave_vm.ml: Enclave Import Int64 Machine Page_table Word
