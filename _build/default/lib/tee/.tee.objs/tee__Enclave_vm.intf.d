lib/tee/enclave_vm.mli: Enclave Import Machine Word
