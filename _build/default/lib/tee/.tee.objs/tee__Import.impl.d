lib/tee/import.ml: Riscv Simlog Uarch
