lib/tee/security_monitor.ml: Array Csr Enclave Exec_context Hashtbl Import Instr Int64 List Log Machine Memory Memory_layout Pmp Printf Priv Program Result Sbi Word
