lib/tee/security_monitor.mli: Enclave Import Machine Program Word
