lib/tee/enclave.ml: Format Import Int64 Word
