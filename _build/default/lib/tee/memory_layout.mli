open Import

(** Physical memory map shared by the security monitor and the test
    harness.

    All regions are naturally aligned powers of two so they can be covered
    by single PMP NAPOT entries.  The enclave pool starts at an address
    that differs from the host code base only in bit 27 — above the index
    and partial-tag bits of both cores' branch target buffers — which is
    what lets the M2 gadget construct aliasing host/enclave branch
    pairs. *)

val ram_base : Word.t
val ram_size : int64

(** Host program text is laid out from here. *)
val host_code_base : Word.t

(** Host data scratch region (attacker-controlled). *)
val host_data_base : Word.t

(** Untrusted shared buffer between host and enclave (Keystone's UTM). *)
val utm_base : Word.t

val utm_size : int

(** Security-monitor region: SM code, data and secrets. *)
val sm_base : Word.t

val sm_size : int

(** An 8-byte SM secret used by the D5 test. *)
val sm_secret_addr : Word.t

(** Region the host builds its sv39 page tables in. *)
val host_page_table_base : Word.t

(** Enclave pool: region [i] is [enclave_base i .. + enclave_size]. *)
val enclave_pool_base : Word.t

val enclave_size : int
val max_enclaves : int
val enclave_base : int -> Word.t

(** Enclave program text base inside region [i]; its low 27 bits match
    [host_code_base]'s. *)
val enclave_code_base : int -> Word.t

(** [region_of_addr addr] names the region containing [addr], for
    diagnostics. *)
val region_of_addr : Word.t -> string
