open! Import

type call =
  | Create_enclave
  | Run_enclave
  | Stop_enclave
  | Resume_enclave
  | Exit_enclave
  | Destroy_enclave
  | Attest_enclave

let all =
  [
    Create_enclave;
    Run_enclave;
    Stop_enclave;
    Resume_enclave;
    Exit_enclave;
    Destroy_enclave;
    Attest_enclave;
  ]

(* Keystone's SBI_SM_* function identifiers start at 2001. *)
let to_code = function
  | Create_enclave -> 2001L
  | Run_enclave -> 2002L
  | Stop_enclave -> 2003L
  | Resume_enclave -> 2005L
  | Exit_enclave -> 2004L
  | Destroy_enclave -> 2006L
  | Attest_enclave -> 2007L

let of_code = function
  | 2001L -> Some Create_enclave
  | 2002L -> Some Run_enclave
  | 2003L -> Some Stop_enclave
  | 2005L -> Some Resume_enclave
  | 2004L -> Some Exit_enclave
  | 2006L -> Some Destroy_enclave
  | 2007L -> Some Attest_enclave
  | _ -> None

let to_string = function
  | Create_enclave -> "sm_create_enclave"
  | Run_enclave -> "sm_run_enclave"
  | Stop_enclave -> "sm_stop_enclave"
  | Resume_enclave -> "sm_resume_enclave"
  | Exit_enclave -> "sm_exit_enclave"
  | Destroy_enclave -> "sm_destroy_enclave"
  | Attest_enclave -> "sm_attest_enclave"

let pp fmt c = Format.pp_print_string fmt (to_string c)
let error_code = Int64.minus_one
