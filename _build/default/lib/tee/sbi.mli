open Import

(** Supervisor Binary Interface of the security monitor.

    The host supervisor requests enclave management by loading a function
    identifier into [a7] (and arguments into [a0]...) and executing
    [ECALL], exactly as Keystone's SM does.  These are the TEE API entry
    points the verification plan enumerates and around which the setup
    gadgets are built. *)

type call =
  | Create_enclave  (** a0 = requested size; returns eid in a0. *)
  | Run_enclave  (** a0 = eid. *)
  | Stop_enclave  (** a0 = eid. *)
  | Resume_enclave  (** a0 = eid. *)
  | Exit_enclave  (** From inside an enclave. *)
  | Destroy_enclave  (** a0 = eid; zeroes enclave memory. *)
  | Attest_enclave  (** a0 = eid; returns measurement in a0. *)

val all : call list
val to_code : call -> Word.t
val of_code : Word.t -> call option
val to_string : call -> string
val pp : Format.formatter -> call -> unit

(** Value returned in [a0] on an SBI error. *)
val error_code : Word.t
