open! Import

let ram_base = 0x8000_0000L
let ram_size = 0x8000_0000L
let host_code_base = 0x8000_0000L
let host_data_base = 0x8004_0000L
let utm_base = 0x8008_0000L
let utm_size = 0x1_0000
let sm_base = 0x8010_0000L
let sm_size = 0x10_0000
let sm_secret_addr = Int64.add sm_base 0x1000L
let host_page_table_base = 0x8020_0000L

(* Bit 27 distinguishes the pool from host code: below both cores' BTB
   tag coverage, so host and enclave PCs with equal low bits alias. *)
let enclave_pool_base = 0x8800_0000L
let enclave_size = 0x1_0000
let max_enclaves = 8

let enclave_base i =
  assert (i >= 0 && i < max_enclaves);
  Int64.add enclave_pool_base (Int64.of_int (i * enclave_size))

let enclave_code_base i = enclave_base i

let inside base size addr =
  Int64.unsigned_compare addr base >= 0
  && Int64.unsigned_compare addr (Int64.add base (Int64.of_int size)) < 0

let region_of_addr addr =
  if inside sm_base sm_size addr then "security-monitor"
  else if inside utm_base utm_size addr then "utm-shared"
  else if
    inside enclave_pool_base (enclave_size * max_enclaves) addr
  then
    Printf.sprintf "enclave-%d"
      (Int64.to_int (Int64.div (Int64.sub addr enclave_pool_base) (Int64.of_int enclave_size)))
  else if inside host_page_table_base 0x10_0000 addr then "host-page-tables"
  else if Int64.unsigned_compare addr ram_base >= 0 then "host"
  else "unmapped"
