open! Import

type t = { builder : Page_table.builder; root_addr : Word.t }

let table_offset = 0xA000

let enclave_perm =
  { Page_table.read = true; write = true; execute = true; user = true }

let build machine (enclave : Enclave.t) =
  let table_region = Int64.add enclave.Enclave.base (Int64.of_int table_offset) in
  let builder =
    Page_table.create_builder (Machine.memory machine) ~table_region ()
  in
  Page_table.map_range builder ~vaddr:enclave.Enclave.base
    ~paddr:enclave.Enclave.base
    ~size:(Int64.of_int enclave.Enclave.size)
    ~perm:enclave_perm;
  { builder; root_addr = Page_table.root builder }

let map_extra t ~vaddr ~paddr =
  Page_table.map t.builder ~vaddr ~paddr ~perm:enclave_perm

let satp t = Page_table.satp_of_root t.root_addr
let root t = t.root_addr
