(** 64-bit machine words and bit-manipulation helpers.

    All architectural and microarchitectural values in the simulator are
    [int64] little-endian words.  This module gathers the masking,
    sign-extension and hashing primitives shared by the whole code base so
    that no other module open-codes bit twiddling. *)

type t = int64

val zero : t

(** [mask bits] is an all-ones mask of the [bits] low bits.
    Requires [0 <= bits <= 64]. *)
val mask : int -> t

(** [extract x ~pos ~len] extracts [len] bits of [x] starting at bit
    [pos] (bit 0 is the least significant). *)
val extract : t -> pos:int -> len:int -> t

(** [sign_extend x ~bits] sign-extends the [bits]-bit value held in the
    low bits of [x] to a full 64-bit word. *)
val sign_extend : t -> bits:int -> t

(** [align_down x ~alignment] rounds [x] down to a multiple of
    [alignment], which must be a power of two. *)
val align_down : t -> alignment:int -> t

(** [is_aligned x ~alignment] is true when [x] is a multiple of
    [alignment], which must be a power of two. *)
val is_aligned : t -> alignment:int -> bool

(** [splitmix64 x] is one round of the SplitMix64 mixing function.  It is
    used both as the deterministic PRNG underlying the fuzzer and as the
    address-to-secret hash that lets the checker trace a leaked value back
    to the enclave address it was seeded at. *)
val splitmix64 : t -> t

(** [pp] formats a word as [0x%016Lx]. *)
val pp : Format.formatter -> t -> unit

(** [to_hex x] is the compact hexadecimal rendering of [x] with a [0x]
    prefix and no leading zeroes. *)
val to_hex : t -> string

(** [byte_of x ~index] is byte [index] (0 = least significant) of [x]. *)
val byte_of : t -> index:int -> int

(** [set_byte x ~index ~byte] replaces byte [index] of [x]. *)
val set_byte : t -> index:int -> byte:int -> t
