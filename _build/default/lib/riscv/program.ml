type element = Instr of Instr.t | Label of string

type t = {
  base : Word.t;
  instrs : Instr.t array;
  labels : (string, Word.t) Hashtbl.t;
}

let instr_bytes = 4L

let assemble ~base elements =
  let labels = Hashtbl.create 8 in
  let instrs = ref [] in
  let count = ref 0 in
  List.iter
    (fun el ->
      match el with
      | Instr i ->
        instrs := i :: !instrs;
        incr count
      | Label name ->
        if Hashtbl.mem labels name then
          invalid_arg (Printf.sprintf "Program.assemble: duplicate label %s" name);
        Hashtbl.replace labels name
          (Int64.add base (Int64.mul (Int64.of_int !count) instr_bytes)))
    elements;
  let t = { base; instrs = Array.of_list (List.rev !instrs); labels } in
  (* Check that every referenced label exists. *)
  Array.iter
    (fun i ->
      match (i : Instr.t) with
      | Branch (_, _, _, label) | Jal label ->
        if not (Hashtbl.mem labels label) then
          invalid_arg (Printf.sprintf "Program.assemble: undefined label %s" label)
      | Li _ | Alu _ | Alui _ | Load _ | Store _ | Csrr _ | Csrw _ | Ecall
      | Fence | Nop | Halt ->
        ())
    t.instrs;
  t

let of_instrs ~base instrs = assemble ~base (List.map (fun i -> Instr i) instrs)
let base t = t.base
let length t = Array.length t.instrs

let fetch t ~pc =
  let off = Int64.sub pc t.base in
  if Int64.compare off 0L < 0 || Int64.rem off instr_bytes <> 0L then None
  else
    let idx = Int64.to_int (Int64.div off instr_bytes) in
    if idx >= Array.length t.instrs then None else Some t.instrs.(idx)

let resolve t label =
  match Hashtbl.find_opt t.labels label with
  | Some pc -> pc
  | None -> raise Not_found

let pp fmt t =
  Array.iteri
    (fun i instr ->
      let pc = Int64.add t.base (Int64.mul (Int64.of_int i) instr_bytes) in
      Format.fprintf fmt "%a: %a@." Word.pp pc Instr.pp instr)
    t.instrs
