(** Assembled programs: instruction sequences with resolved labels.

    A program is what the machine executes for one software context (host
    code or enclave code).  Instructions occupy four bytes each starting
    at [base]; labels name instruction offsets and are resolved when the
    program is built.  The program counter values matter because the
    branch predictors index and tag on them (case M2 of the paper relies
    on the exact PC bits of host and enclave branches). *)

type t

(** Program text element: an instruction or a label definition. *)
type element = Instr of Instr.t | Label of string

(** [assemble ~base elements] lays out [elements] from address [base].
    Raises [Invalid_argument] if a branch targets an undefined label or a
    label is defined twice. *)
val assemble : base:Word.t -> element list -> t

(** [of_instrs ~base instrs] assembles a straight-line program. *)
val of_instrs : base:Word.t -> Instr.t list -> t

val base : t -> Word.t
val length : t -> int

(** [fetch t ~pc] is the instruction at [pc], or [None] when [pc] falls
    outside the program (treated as an implicit halt). *)
val fetch : t -> pc:Word.t -> Instr.t option

(** [resolve t label] is the PC of [label]. Raises [Not_found]. *)
val resolve : t -> string -> Word.t

val pp : Format.formatter -> t -> unit
