type t = int64

let zero = 0L

let mask bits =
  assert (bits >= 0 && bits <= 64);
  if bits = 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L

let extract x ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= 64);
  Int64.logand (Int64.shift_right_logical x pos) (mask len)

let sign_extend x ~bits =
  assert (bits > 0 && bits <= 64);
  if bits = 64 then x
  else
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left x shift) shift

let align_down x ~alignment =
  assert (alignment > 0 && alignment land (alignment - 1) = 0);
  Int64.logand x (Int64.lognot (Int64.of_int (alignment - 1)))

let is_aligned x ~alignment =
  assert (alignment > 0 && alignment land (alignment - 1) = 0);
  Int64.logand x (Int64.of_int (alignment - 1)) = 0L

let splitmix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let pp fmt x = Format.fprintf fmt "0x%016Lx" x
let to_hex x = Printf.sprintf "0x%Lx" x
let byte_of x ~index = Int64.to_int (extract x ~pos:(index * 8) ~len:8)

let set_byte x ~index ~byte =
  assert (index >= 0 && index < 8 && byte >= 0 && byte < 256);
  let cleared = Int64.logand x (Int64.lognot (Int64.shift_left 0xFFL (index * 8))) in
  Int64.logor cleared (Int64.shift_left (Int64.of_int byte) (index * 8))
