(** RV64I binary decoding.

    Inverts {!Encode}: machine-code words decode back to symbolic
    instructions, and a whole image reconstructs into a {!Program} with
    synthesised labels at branch/jump targets.  The supported surface is
    exactly what {!Encode} emits (the RV64I subset the gadgets use). *)

type decoded =
  | Plain of Instr.t
      (** Instruction with no control-flow target. *)
  | Branch_to of Instr.cond * Instr.reg * Instr.reg * Word.t
      (** Conditional branch with its absolute target. *)
  | Jal_to of Word.t
  | Unknown of Encode.word

val pp_decoded : Format.formatter -> decoded -> unit

(** [decode ~pc word] decodes one instruction fetched from [pc] (needed
    to turn pc-relative offsets into absolute targets). *)
val decode : pc:Word.t -> Encode.word -> decoded

(** [to_program ~base words] reconstructs a runnable program: branch and
    jump targets become labels named [L_<hex-pc>].  Fails with [Error]
    when a word does not decode or a target falls outside the image. *)
val to_program : base:Word.t -> Encode.word array -> (Program.t, string) result
