type word = int32

exception Encode_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

(* {1 Pseudo-instruction lowering} *)

(* Materialise a 64-bit constant using only addi/slli/ori: the value is
   consumed 11 bits at a time from the most significant end, so every
   immediate stays positive and below the 12-bit sign boundary. *)
let lower_li ~rd value =
  let fits_simm12 v = Int64.compare v 2048L < 0 && Int64.compare v (-2048L) >= 0 in
  if fits_simm12 value then [ Instr.Alui (Instr.Add, rd, 0, value) ]
  else begin
    (* Chunks: bits [63:55] (9 bits), then five 11-bit chunks. *)
    let top = Word.extract value ~pos:55 ~len:9 in
    let instrs = ref [ Instr.Alui (Instr.Add, rd, 0, top) ] in
    List.iter
      (fun pos ->
        let chunk = Word.extract value ~pos ~len:11 in
        instrs := Instr.Alui (Instr.Or, rd, rd, chunk)
                  :: Instr.Alui (Instr.Sll, rd, rd, 11L)
                  :: !instrs)
      [ 44; 33; 22; 11; 0 ];
    List.rev !instrs
  end

let lowered instr =
  match (instr : Instr.t) with
  | Instr.Li (rd, v) -> lower_li ~rd v
  | i -> [ i ]

let lowered_length instr = List.length (lowered instr)

(* {1 Field packing} *)

let ( <<< ) v n = Int32.shift_left v n
let ( ||| ) = Int32.logor
let field v ~mask = Int32.of_int (v land mask)
let bit64 v ~pos = Int64.to_int (Word.extract v ~pos ~len:1)
let bits64 v ~pos ~len = Int64.to_int (Word.extract v ~pos ~len)

let r_type ~opcode ~funct3 ~funct7 ~rd ~rs1 ~rs2 =
  field opcode ~mask:0x7F
  ||| (field rd ~mask:0x1F <<< 7)
  ||| (field funct3 ~mask:0x7 <<< 12)
  ||| (field rs1 ~mask:0x1F <<< 15)
  ||| (field rs2 ~mask:0x1F <<< 20)
  ||| (field funct7 ~mask:0x7F <<< 25)

let i_type ~opcode ~funct3 ~rd ~rs1 ~imm =
  if imm < -2048 || imm > 2047 then error "I-type immediate %d out of range" imm;
  field opcode ~mask:0x7F
  ||| (field rd ~mask:0x1F <<< 7)
  ||| (field funct3 ~mask:0x7 <<< 12)
  ||| (field rs1 ~mask:0x1F <<< 15)
  ||| (field (imm land 0xFFF) ~mask:0xFFF <<< 20)

let s_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  if imm < -2048 || imm > 2047 then error "S-type immediate %d out of range" imm;
  let imm = imm land 0xFFF in
  field opcode ~mask:0x7F
  ||| (field (imm land 0x1F) ~mask:0x1F <<< 7)
  ||| (field funct3 ~mask:0x7 <<< 12)
  ||| (field rs1 ~mask:0x1F <<< 15)
  ||| (field rs2 ~mask:0x1F <<< 20)
  ||| (field (imm lsr 5) ~mask:0x7F <<< 25)

let b_type ~funct3 ~rs1 ~rs2 ~offset =
  if Int64.rem offset 2L <> 0L then error "branch offset %Ld is odd" offset;
  if Int64.compare offset 4096L >= 0 || Int64.compare offset (-4096L) < 0 then
    error "branch offset %Ld out of range" offset;
  field 0x63 ~mask:0x7F
  ||| (field (bit64 offset ~pos:11) ~mask:0x1 <<< 7)
  ||| (field (bits64 offset ~pos:1 ~len:4) ~mask:0xF <<< 8)
  ||| (field funct3 ~mask:0x7 <<< 12)
  ||| (field rs1 ~mask:0x1F <<< 15)
  ||| (field rs2 ~mask:0x1F <<< 20)
  ||| (field (bits64 offset ~pos:5 ~len:6) ~mask:0x3F <<< 25)
  ||| (field (bit64 offset ~pos:12) ~mask:0x1 <<< 31)

let j_type ~rd ~offset =
  if Int64.rem offset 2L <> 0L then error "jump offset %Ld is odd" offset;
  if Int64.compare offset 0x100000L >= 0 || Int64.compare offset (-0x100000L) < 0 then
    error "jump offset %Ld out of range" offset;
  field 0x6F ~mask:0x7F
  ||| (field rd ~mask:0x1F <<< 7)
  ||| (field (bits64 offset ~pos:12 ~len:8) ~mask:0xFF <<< 12)
  ||| (field (bit64 offset ~pos:11) ~mask:0x1 <<< 20)
  ||| (field (bits64 offset ~pos:1 ~len:10) ~mask:0x3FF <<< 21)
  ||| (field (bit64 offset ~pos:20) ~mask:0x1 <<< 31)

(* {1 Single-instruction encoding} *)

let alu_r_functs = function
  | Instr.Add -> (0x0, 0x00)
  | Instr.Sub -> (0x0, 0x20)
  | Instr.Sll -> (0x1, 0x00)
  | Instr.Xor -> (0x4, 0x00)
  | Instr.Srl -> (0x5, 0x00)
  | Instr.Or -> (0x6, 0x00)
  | Instr.And -> (0x7, 0x00)

let alu_i_funct3 = function
  | Instr.Add -> 0x0
  | Instr.Sll -> 0x1
  | Instr.Xor -> 0x4
  | Instr.Srl -> 0x5
  | Instr.Or -> 0x6
  | Instr.And -> 0x7
  | Instr.Sub -> error "subi does not exist; negate the immediate"

(* Narrow loads zero-extend in the simulator: lbu/lhu/lwu/ld. *)
let load_funct3 = function
  | Instr.Byte -> 0x4
  | Instr.Half -> 0x5
  | Instr.Word_ -> 0x6
  | Instr.Double -> 0x3

let store_funct3 = function
  | Instr.Byte -> 0x0
  | Instr.Half -> 0x1
  | Instr.Word_ -> 0x2
  | Instr.Double -> 0x3

let cond_funct3 = function
  | Instr.Eq -> 0x0
  | Instr.Ne -> 0x1
  | Instr.Lt -> 0x4
  | Instr.Ge -> 0x5

let encode_at ~pc ~target (instr : Instr.t) =
  match instr with
  | Instr.Li _ -> error "Li must be lowered before encoding"
  | Instr.Nop -> i_type ~opcode:0x13 ~funct3:0x0 ~rd:0 ~rs1:0 ~imm:0
  | Instr.Halt -> 0x00100073l (* ebreak: the simulator's halt convention *)
  | Instr.Ecall -> 0x00000073l
  | Instr.Fence -> 0x0330000Fl (* fence iorw,iorw *)
  | Instr.Alu (op, rd, rs1, rs2) ->
    let funct3, funct7 = alu_r_functs op in
    r_type ~opcode:0x33 ~funct3 ~funct7 ~rd ~rs1 ~rs2
  | Instr.Alui (op, rd, rs1, imm) -> (
    match op with
    | Instr.Sll | Instr.Srl ->
      let shamt = Int64.to_int (Int64.logand imm 63L) in
      i_type ~opcode:0x13 ~funct3:(alu_i_funct3 op) ~rd ~rs1 ~imm:shamt
    | _ -> i_type ~opcode:0x13 ~funct3:(alu_i_funct3 op) ~rd ~rs1 ~imm:(Int64.to_int imm))
  | Instr.Load { width; rd; base; offset } ->
    i_type ~opcode:0x03 ~funct3:(load_funct3 width) ~rd ~rs1:base
      ~imm:(Int64.to_int offset)
  | Instr.Store { width; rs; base; offset } ->
    s_type ~opcode:0x23 ~funct3:(store_funct3 width) ~rs1:base ~rs2:rs
      ~imm:(Int64.to_int offset)
  | Instr.Branch (c, rs1, rs2, label) -> (
    match target with
    | Some t -> b_type ~funct3:(cond_funct3 c) ~rs1 ~rs2 ~offset:(Int64.sub t pc)
    | None -> error "branch to %s has no resolved target" label)
  | Instr.Jal label -> (
    match target with
    | Some t -> j_type ~rd:0 ~offset:(Int64.sub t pc)
    | None -> error "jump to %s has no resolved target" label)
  | Instr.Csrr (rd, csr) ->
    (* csrrs rd, csr, x0 *)
    i_type ~opcode:0x73 ~funct3:0x2 ~rd ~rs1:0 ~imm:0
    ||| (field (Csr.address csr) ~mask:0xFFF <<< 20)
  | Instr.Csrw (csr, rs) ->
    (* csrrw x0, csr, rs *)
    i_type ~opcode:0x73 ~funct3:0x1 ~rd:0 ~rs1:rs ~imm:0
    ||| (field (Csr.address csr) ~mask:0xFFF <<< 20)

(* {1 Two-pass assembly}

   Lowering stretches the layout, so labels are re-resolved against the
   lowered program before encoding. *)

let assemble prog =
  (* Pass 1: lower every instruction and compute the new pc of every
     original instruction slot. *)
  let base = Program.base prog in
  let original = Array.init (Program.length prog) (fun i ->
      match Program.fetch prog ~pc:(Int64.add base (Int64.of_int (i * 4))) with
      | Some instr -> instr
      | None -> error "hole in program at index %d" i)
  in
  let lowered_chunks = Array.map lowered original in
  let new_pc = Array.make (Array.length original + 1) base in
  Array.iteri
    (fun i chunk ->
      new_pc.(i + 1) <- Int64.add new_pc.(i) (Int64.of_int (4 * List.length chunk)))
    lowered_chunks;
  (* Old-layout pc -> new-layout pc, for label re-resolution. *)
  let remap old =
    let idx = Int64.to_int (Int64.div (Int64.sub old base) 4L) in
    if idx < 0 || idx > Array.length original then
      error "label target %Ld outside the program" old
    else new_pc.(idx)
  in
  (* Pass 2: encode with targets resolved in the new layout. *)
  let words = ref [] in
  Array.iteri
    (fun i chunk ->
      let pc = ref new_pc.(i) in
      List.iter
        (fun instr ->
          let target =
            match (instr : Instr.t) with
            | Instr.Branch (_, _, _, label) | Instr.Jal label ->
              Some (remap (Program.resolve prog label))
            | _ -> None
          in
          words := encode_at ~pc:!pc ~target instr :: !words;
          pc := Int64.add !pc 4L)
        chunk)
    lowered_chunks;
  Array.of_list (List.rev !words)
