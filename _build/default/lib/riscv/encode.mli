(** RV64I binary encoding.

    Turns symbolic {!Instr} programs into real RISC-V machine code, the
    format the paper's artifact feeds to the RTL simulators as compiled
    ELF payloads.  Encoding is a genuine two-pass assembly:

    - pseudo-instructions are lowered first ([Li] materialises a 64-bit
      constant as an [addi]/[slli]/[ori] chain; [Halt] becomes [ebreak],
      the simulator's stop convention),
    - then labels are resolved against the {e lowered} layout, so branch
      and jump offsets remain correct even when lowering stretched the
      code.

    Width-load semantics match the simulator: narrow loads zero-extend,
    so [Byte]/[Half]/[Word_] encode as [lbu]/[lhu]/[lwu]. *)

type word = int32

(** [lower_li ~rd value] is the constant-materialisation sequence: only
    [Alui] ([addi]/[ori]/[slli]) instructions, writing [value] into
    [rd].  Exposed for tests. *)
val lower_li : rd:Instr.reg -> Word.t -> Instr.t list

(** [lowered_length instr] is how many 4-byte words [instr] occupies
    after lowering. *)
val lowered_length : Instr.t -> int

exception Encode_error of string

(** [assemble prog] lays the program out from its base address and
    returns the machine-code words.  Raises [Encode_error] on branch
    offsets that do not fit their immediate fields. *)
val assemble : Program.t -> word array

(** [encode_at ~pc ~target instr] encodes one non-pseudo instruction
    whose (optional) control-flow target is already resolved.  Raises
    [Encode_error] for pseudo-instructions ([Li]) that need lowering
    first. *)
val encode_at : pc:Word.t -> target:Word.t option -> Instr.t -> word
