type decoded =
  | Plain of Instr.t
  | Branch_to of Instr.cond * Instr.reg * Instr.reg * Word.t
  | Jal_to of Word.t
  | Unknown of Encode.word

let pp_decoded fmt = function
  | Plain i -> Instr.pp fmt i
  | Branch_to (c, rs1, rs2, t) ->
    Format.fprintf fmt "%s x%d, x%d, %a"
      (match c with Instr.Eq -> "beq" | Instr.Ne -> "bne" | Instr.Lt -> "blt" | Instr.Ge -> "bge")
      rs1 rs2 Word.pp t
  | Jal_to t -> Format.fprintf fmt "j %a" Word.pp t
  | Unknown w -> Format.fprintf fmt ".word 0x%08lx" w

(* Field extraction. *)
let bits w ~pos ~len =
  Int32.to_int (Int32.logand (Int32.shift_right_logical w pos) (Int32.of_int ((1 lsl len) - 1)))

let sext v ~bits:n = Word.sign_extend (Int64.of_int v) ~bits:n
let opcode w = bits w ~pos:0 ~len:7
let rd w = bits w ~pos:7 ~len:5
let funct3 w = bits w ~pos:12 ~len:3
let rs1 w = bits w ~pos:15 ~len:5
let rs2 w = bits w ~pos:20 ~len:5
let funct7 w = bits w ~pos:25 ~len:7
let i_imm w = sext (bits w ~pos:20 ~len:12) ~bits:12

let s_imm w =
  sext ((bits w ~pos:25 ~len:7 lsl 5) lor bits w ~pos:7 ~len:5) ~bits:12

let b_offset w =
  let v =
    (bits w ~pos:31 ~len:1 lsl 12)
    lor (bits w ~pos:7 ~len:1 lsl 11)
    lor (bits w ~pos:25 ~len:6 lsl 5)
    lor (bits w ~pos:8 ~len:4 lsl 1)
  in
  sext v ~bits:13

let j_offset w =
  let v =
    (bits w ~pos:31 ~len:1 lsl 20)
    lor (bits w ~pos:12 ~len:8 lsl 12)
    lor (bits w ~pos:20 ~len:1 lsl 11)
    lor (bits w ~pos:21 ~len:10 lsl 1)
  in
  sext v ~bits:21

let decode ~pc w =
  match opcode w with
  | 0x13 -> (
    (* op-imm *)
    let rd = rd w and rs1 = rs1 w in
    match funct3 w with
    | 0x0 ->
      if rd = 0 && rs1 = 0 && i_imm w = 0L then Plain Instr.Nop
      else Plain (Instr.Alui (Instr.Add, rd, rs1, i_imm w))
    | 0x1 -> Plain (Instr.Alui (Instr.Sll, rd, rs1, Int64.of_int (bits w ~pos:20 ~len:6)))
    | 0x4 -> Plain (Instr.Alui (Instr.Xor, rd, rs1, i_imm w))
    | 0x5 -> Plain (Instr.Alui (Instr.Srl, rd, rs1, Int64.of_int (bits w ~pos:20 ~len:6)))
    | 0x6 -> Plain (Instr.Alui (Instr.Or, rd, rs1, i_imm w))
    | 0x7 -> Plain (Instr.Alui (Instr.And, rd, rs1, i_imm w))
    | _ -> Unknown w)
  | 0x33 -> (
    let op =
      match (funct3 w, funct7 w) with
      | 0x0, 0x00 -> Some Instr.Add
      | 0x0, 0x20 -> Some Instr.Sub
      | 0x1, 0x00 -> Some Instr.Sll
      | 0x4, 0x00 -> Some Instr.Xor
      | 0x5, 0x00 -> Some Instr.Srl
      | 0x6, 0x00 -> Some Instr.Or
      | 0x7, 0x00 -> Some Instr.And
      | _ -> None
    in
    match op with
    | Some op -> Plain (Instr.Alu (op, rd w, rs1 w, rs2 w))
    | None -> Unknown w)
  | 0x03 -> (
    let width =
      match funct3 w with
      | 0x4 -> Some Instr.Byte
      | 0x5 -> Some Instr.Half
      | 0x6 -> Some Instr.Word_
      | 0x3 -> Some Instr.Double
      | _ -> None
    in
    match width with
    | Some width ->
      Plain (Instr.Load { width; rd = rd w; base = rs1 w; offset = i_imm w })
    | None -> Unknown w)
  | 0x23 -> (
    let width =
      match funct3 w with
      | 0x0 -> Some Instr.Byte
      | 0x1 -> Some Instr.Half
      | 0x2 -> Some Instr.Word_
      | 0x3 -> Some Instr.Double
      | _ -> None
    in
    match width with
    | Some width ->
      Plain (Instr.Store { width; rs = rs2 w; base = rs1 w; offset = s_imm w })
    | None -> Unknown w)
  | 0x63 -> (
    let cond =
      match funct3 w with
      | 0x0 -> Some Instr.Eq
      | 0x1 -> Some Instr.Ne
      | 0x4 -> Some Instr.Lt
      | 0x5 -> Some Instr.Ge
      | _ -> None
    in
    match cond with
    | Some c -> Branch_to (c, rs1 w, rs2 w, Int64.add pc (b_offset w))
    | None -> Unknown w)
  | 0x6F -> if rd w = 0 then Jal_to (Int64.add pc (j_offset w)) else Unknown w
  | 0x73 -> (
    if Int32.equal w 0x00000073l then Plain Instr.Ecall
    else if Int32.equal w 0x00100073l then Plain Instr.Halt
    else
      match (funct3 w, Csr.of_address (bits w ~pos:20 ~len:12)) with
      | 0x2, Some csr when rs1 w = 0 -> Plain (Instr.Csrr (rd w, csr))
      | 0x1, Some csr when rd w = 0 -> Plain (Instr.Csrw (csr, rs1 w))
      | _ -> Unknown w)
  | 0x0F -> Plain Instr.Fence
  | _ -> Unknown w

let label_for pc = Printf.sprintf "L_%Lx" pc

let to_program ~base words =
  let n = Array.length words in
  let end_pc = Int64.add base (Int64.of_int (4 * n)) in
  let decoded =
    Array.mapi (fun i w -> decode ~pc:(Int64.add base (Int64.of_int (4 * i))) w) words
  in
  (* Collect targets; all must land inside [base, end_pc]. *)
  let targets = Hashtbl.create 8 in
  let bad = ref None in
  Array.iter
    (fun d ->
      match d with
      | Branch_to (_, _, _, t) | Jal_to t ->
        if Int64.unsigned_compare t base < 0 || Int64.unsigned_compare t end_pc > 0 then
          bad := Some t
        else Hashtbl.replace targets t ()
      | Plain _ -> ()
      | Unknown w -> bad := Some (Int64.of_int32 w))
    decoded;
  match !bad with
  | Some t -> Error (Printf.sprintf "cannot reconstruct program (bad word or target 0x%Lx)" t)
  | None ->
    let elements = ref [] in
    Array.iteri
      (fun i d ->
        let pc = Int64.add base (Int64.of_int (4 * i)) in
        if Hashtbl.mem targets pc then elements := Program.Label (label_for pc) :: !elements;
        let instr =
          match d with
          | Plain instr -> instr
          | Branch_to (c, rs1, rs2, t) -> Instr.Branch (c, rs1, rs2, label_for t)
          | Jal_to t -> Instr.Jal (label_for t)
          | Unknown _ -> assert false
        in
        elements := Program.Instr instr :: !elements)
      decoded;
    if Hashtbl.mem targets end_pc then
      (* A branch to just past the end: give the label a landing pad. *)
      elements := Program.Instr Instr.Halt :: Program.Label (label_for end_pc) :: !elements;
    Ok (Program.assemble ~base (List.rev !elements))
