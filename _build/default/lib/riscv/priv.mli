(** RISC-V privilege modes.

    The simulator models the three classic modes.  Machine mode is where
    the Keystone-style security monitor runs; enclaves and the untrusted
    host both run in supervisor/user mode and are distinguished by the PMP
    configuration active at the time (see {!Pmp}). *)

type t = User | Supervisor | Machine

(** Numeric encoding used by the ISA (U=0, S=1, M=3). *)
val to_int : t -> int

val of_int : int -> t option

(** [geq a b] is true when mode [a] is at least as privileged as [b]. *)
val geq : t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
