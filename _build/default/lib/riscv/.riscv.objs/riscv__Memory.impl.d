lib/riscv/memory.ml: Array Hashtbl Int64 Option Word
