lib/riscv/decode.mli: Encode Format Instr Program Word
