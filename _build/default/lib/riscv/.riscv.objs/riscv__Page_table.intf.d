lib/riscv/page_table.mli: Memory Word
