lib/riscv/decode.ml: Array Csr Encode Format Hashtbl Instr Int32 Int64 List Printf Program Word
