lib/riscv/instr.mli: Csr Format Word
