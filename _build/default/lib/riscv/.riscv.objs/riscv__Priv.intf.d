lib/riscv/priv.mli: Format
