lib/riscv/csr.ml: Format Hashtbl Int64 List Option Printf Priv Result Word
