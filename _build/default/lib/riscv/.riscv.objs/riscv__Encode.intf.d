lib/riscv/encode.mli: Instr Program Word
