lib/riscv/instr.ml: Csr Format Word
