lib/riscv/priv.ml: Format
