lib/riscv/encode.ml: Array Csr Instr Int32 Int64 List Printf Program Word
