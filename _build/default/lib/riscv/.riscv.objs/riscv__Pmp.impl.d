lib/riscv/pmp.ml: Array Format Int64 Priv Word
