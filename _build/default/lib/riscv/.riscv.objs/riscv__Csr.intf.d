lib/riscv/csr.mli: Format Priv Word
