lib/riscv/word.mli: Format
