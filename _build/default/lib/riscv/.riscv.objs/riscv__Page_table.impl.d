lib/riscv/page_table.ml: Int64 List Memory Word
