lib/riscv/memory.mli: Word
