lib/riscv/program.mli: Format Instr Word
