lib/riscv/program.ml: Array Format Hashtbl Instr Int64 List Printf Word
