lib/riscv/pmp.mli: Format Priv Word
