type t = User | Supervisor | Machine

let to_int = function User -> 0 | Supervisor -> 1 | Machine -> 3

let of_int = function
  | 0 -> Some User
  | 1 -> Some Supervisor
  | 3 -> Some Machine
  | _ -> None

let geq a b = to_int a >= to_int b
let equal a b = to_int a = to_int b
let to_string = function User -> "U" | Supervisor -> "S" | Machine -> "M"
let pp fmt t = Format.pp_print_string fmt (to_string t)
