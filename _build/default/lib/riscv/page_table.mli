(** Sv39 page tables.

    The host supervisor owns its page tables in ordinary memory; the
    hardware page-table walker traverses them on a TLB miss.  Because the
    malicious OS controls [satp], it can point the root page table into
    enclave memory — the D2 leakage case of the paper — so the walker in
    {!Uarch} performs each of the accesses enumerated here through the
    real memory hierarchy rather than trusting this module's pure
    reference walk.

    Virtual addresses are 39 bits: three 9-bit VPN fields and a 12-bit
    page offset.  Only 4-KiB leaf pages are modelled. *)

val page_size : int
val levels : int

type pte_perm = { read : bool; write : bool; execute : bool; user : bool }

type pte =
  | Invalid
  | Pointer of Word.t  (** Next-level table physical base address. *)
  | Leaf of { paddr : Word.t; perm : pte_perm }

(** [vpn vaddr ~level] is the 9-bit VPN field for [level] (2 is the root
    level). *)
val vpn : Word.t -> level:int -> int

(** [pte_addr ~table_base ~vaddr ~level] is the physical address of the
    PTE consulted at [level] of the walk when the current table lives at
    [table_base]. *)
val pte_addr : table_base:Word.t -> vaddr:Word.t -> level:int -> Word.t

val encode_pte : pte -> Word.t
val decode_pte : Word.t -> pte

(** [satp_of_root root] encodes a [satp] value with MODE=sv39 and the
    given root table address; [root_of_satp] decodes it.  A [satp] of
    zero means translation is off (bare mode). *)
val satp_of_root : Word.t -> Word.t

val root_of_satp : Word.t -> Word.t option

(** Page-table construction: a builder owns an allocator for page-table
    pages inside a designated physical region. *)
type builder

val create_builder : Memory.t -> table_region:Word.t -> unit -> builder

(** Physical address of the root table. *)
val root : builder -> Word.t

(** [map builder ~vaddr ~paddr ~perm] installs a 4-KiB mapping,
    allocating intermediate tables as needed.  Both addresses must be
    page-aligned. *)
val map : builder -> vaddr:Word.t -> paddr:Word.t -> perm:pte_perm -> unit

(** [map_range builder ~vaddr ~paddr ~size ~perm] maps a contiguous
    region page by page. *)
val map_range :
  builder -> vaddr:Word.t -> paddr:Word.t -> size:int64 -> perm:pte_perm -> unit

type walk_step = { level : int; pte_address : Word.t; pte : pte }

type walk_result =
  | Translated of { paddr : Word.t; perm : pte_perm; steps : walk_step list }
  | Fault of { steps : walk_step list }

(** [walk mem ~root ~vaddr] is the pure reference walk used by tests and
    by the TLB refill once the hardware walker's accesses have all been
    performed. *)
val walk : Memory.t -> root:Word.t -> vaddr:Word.t -> walk_result

val user_rw : pte_perm
val user_rx : pte_perm
val supervisor_rw : pte_perm
