let page_size = 4096
let levels = 3

type pte_perm = { read : bool; write : bool; execute : bool; user : bool }

type pte =
  | Invalid
  | Pointer of Word.t
  | Leaf of { paddr : Word.t; perm : pte_perm }

let user_rw = { read = true; write = true; execute = false; user = true }
let user_rx = { read = true; write = false; execute = true; user = true }
let supervisor_rw = { read = true; write = true; execute = false; user = false }

let vpn vaddr ~level =
  assert (level >= 0 && level < levels);
  Int64.to_int (Word.extract vaddr ~pos:(12 + (9 * level)) ~len:9)

let pte_addr ~table_base ~vaddr ~level =
  Int64.add table_base (Int64.of_int (vpn vaddr ~level * 8))

(* PTE bits: V=0 R=1 W=2 X=3 U=4 G=5 A=6 D=7, PPN at 10.. *)
let bit b v = if v then Int64.shift_left 1L b else 0L

let encode_pte = function
  | Invalid -> 0L
  | Pointer base ->
    Int64.logor 1L (Int64.shift_left (Int64.shift_right_logical base 12) 10)
  | Leaf { paddr; perm } ->
    List.fold_left Int64.logor
      (Int64.shift_left (Int64.shift_right_logical paddr 12) 10)
      [
        bit 0 true;
        bit 1 perm.read;
        bit 2 perm.write;
        bit 3 perm.execute;
        bit 4 perm.user;
        bit 6 true (* A *);
        bit 7 perm.write (* D *);
      ]

let decode_pte w =
  let flag b = Word.extract w ~pos:b ~len:1 = 1L in
  if not (flag 0) then Invalid
  else
    let base = Int64.shift_left (Word.extract w ~pos:10 ~len:44) 12 in
    if flag 1 || flag 3 then
      Leaf { paddr = base; perm = { read = flag 1; write = flag 2; execute = flag 3; user = flag 4 } }
    else Pointer base

let satp_of_root root =
  Int64.logor
    (Int64.shift_left 8L 60 (* MODE = sv39 *))
    (Int64.shift_right_logical root 12)

let root_of_satp satp =
  if Word.extract satp ~pos:60 ~len:4 = 8L then
    Some (Int64.shift_left (Word.extract satp ~pos:0 ~len:44) 12)
  else None

type builder = {
  mem : Memory.t;
  root : Word.t;
  mutable next_table : Word.t;
}

let create_builder mem ~table_region () =
  assert (Word.is_aligned table_region ~alignment:page_size);
  {
    mem;
    root = table_region;
    next_table = Int64.add table_region (Int64.of_int page_size);
  }

let root b = b.root

let alloc_table b =
  let t = b.next_table in
  b.next_table <- Int64.add t (Int64.of_int page_size);
  t

let map b ~vaddr ~paddr ~perm =
  assert (Word.is_aligned vaddr ~alignment:page_size);
  assert (Word.is_aligned paddr ~alignment:page_size);
  let rec descend table_base level =
    let addr = pte_addr ~table_base ~vaddr ~level in
    if level = 0 then
      Memory.write b.mem ~addr ~size:8 (encode_pte (Leaf { paddr; perm }))
    else
      let next =
        match decode_pte (Memory.read b.mem ~addr ~size:8) with
        | Pointer base -> base
        | Invalid ->
          let base = alloc_table b in
          Memory.write b.mem ~addr ~size:8 (encode_pte (Pointer base));
          base
        | Leaf _ -> invalid_arg "Page_table.map: superpage in the way"
      in
      descend next (level - 1)
  in
  descend b.root (levels - 1)

let map_range b ~vaddr ~paddr ~size ~perm =
  let pages = Int64.to_int (Int64.div (Int64.add size (Int64.of_int (page_size - 1)))
                              (Int64.of_int page_size)) in
  for i = 0 to pages - 1 do
    let off = Int64.of_int (i * page_size) in
    map b ~vaddr:(Int64.add vaddr off) ~paddr:(Int64.add paddr off) ~perm
  done

type walk_step = { level : int; pte_address : Word.t; pte : pte }

type walk_result =
  | Translated of { paddr : Word.t; perm : pte_perm; steps : walk_step list }
  | Fault of { steps : walk_step list }

let walk mem ~root ~vaddr =
  let rec go table_base level steps =
    let pte_address = pte_addr ~table_base ~vaddr ~level in
    let pte = decode_pte (Memory.read mem ~addr:pte_address ~size:8) in
    let steps = { level; pte_address; pte } :: steps in
    match pte with
    | Invalid -> Fault { steps = List.rev steps }
    | Leaf { paddr; perm } ->
      let offset = Word.extract vaddr ~pos:0 ~len:12 in
      Translated { paddr = Int64.logor paddr offset; perm; steps = List.rev steps }
    | Pointer base ->
      if level = 0 then Fault { steps = List.rev steps }
      else go base (level - 1) steps
  in
  go root (levels - 1) []
