open! Import

exception Invalid_chain of string

module G = Gadget_library

let recipe path ~params =
  let variant = params.Params.variant in
  match path with
  | Access_path.Exp_acc_enc_l1 ->
    [ G.create_enclave; G.fill_enc_mem ]
  | Access_path.Exp_acc_enc_l2 ->
    [ G.create_enclave; G.fill_enc_mem; G.evict_enc_l1 ]
  | Access_path.Exp_acc_enc_mem ->
    [ G.create_enclave; G.fill_enc_mem; G.evict_enc_l1; G.evict_enc_l2 ]
  | Access_path.Exp_acc_enc_stb -> [ G.create_enclave; G.fill_enc_mem_nodrain ]
  | Access_path.Exp_acc_enc_misaligned -> [ G.create_enclave; G.fill_enc_mem ]
  | Access_path.Exp_acc_sm -> [ G.seed_sm_secret; G.touch_sm_secret ]
  | Access_path.Exp_acc_cross_enclave ->
    [ G.create_enclave; G.fill_enc_mem; G.create_attacker_enclave ]
  | Access_path.Exp_acc_host_from_enclave ->
    [ G.create_enclave; G.seed_host_secret ]
  | Access_path.Exp_store_enc -> [ G.create_enclave; G.fill_enc_mem ]
  | Access_path.Imp_acc_pref ->
    [ G.create_enclave; G.fill_enc_mem; G.evict_enc_l1 ]
  | Access_path.Imp_acc_ptw_root ->
    if variant = 1 then [ G.seed_sm_secret; G.create_enclave; G.fill_enc_mem; G.evict_enc_l1 ]
    else [ G.create_enclave; G.fill_enc_mem; G.evict_enc_l1 ]
  | Access_path.Imp_acc_ptw_legit -> [ G.build_host_page_tables ]
  | Access_path.Imp_acc_destroy_memset ->
    [ G.create_enclave; G.fill_enc_mem; G.evict_enc_l1 ]
  | Access_path.Meta_hpc -> [ G.create_enclave; G.prime_hpcs; G.exe_enclave ]
  | Access_path.Meta_btb ->
    [ G.create_enclave; G.prime_ubtb; G.enclave_branch_workload ]

let validate gadgets =
  let model = Exec_model.initial () in
  List.iter
    (fun g ->
      if not (Gadget.applicable g model) then
        raise
          (Invalid_chain
             (Format.asprintf "precondition of %s fails in state [%a]" (Gadget.name g)
                Exec_model.pp model));
      Gadget.apply g model)
    gadgets;
  model

let assemble ~id path ~params =
  let chain = recipe path ~params @ [ G.access_gadget path ] in
  let (_ : Exec_model.t) = validate chain in
  { Testcase.id; path; gadgets = chain; params }
