open! Import

type detection = Fetched | Residue

let detection_to_string = function Fetched -> "fetched" | Residue -> "residue"

type finding = {
  case : Case.id option;
  secret : Secret.seeded option;
  structure : Structure.t;
  cycle : int;
  ctx : Exec_context.t;
  origin : Log.origin option;
  detection : detection;
  note : string;
  last_pc : Word.t option;
}

let pp_finding fmt f =
  Format.fprintf fmt "%s %s in %s at cycle %d (ctx %a%s)%s"
    (match f.case with Some c -> Case.to_string c | None -> "residue")
    (detection_to_string f.detection)
    (Structure.to_string f.structure) f.cycle Exec_context.pp f.ctx
    (match f.origin with
    | Some o -> ", via " ^ Log.origin_to_string o
    | None -> "")
    (match f.secret with
    | Some s -> Format.asprintf ": %a" Secret.pp_seeded s
    | None -> "")

(* Cross-boundary explicit-access classification (D4-D7): decided by the
   owner of the secret and the context that observed it. *)
let cross_boundary_case (owner : Secret.owner) (ctx : Exec_context.t) =
  match (owner, ctx) with
  | Secret.Enclave_owner _, Exec_context.Host _ -> Some Case.D4
  | Secret.Sm_owner, Exec_context.Host _ -> Some Case.D5
  | Secret.Enclave_owner i, Exec_context.Enclave j when i <> j -> Some Case.D6
  | Secret.Host_owner, Exec_context.Enclave _ -> Some Case.D7
  | Secret.Sm_owner, Exec_context.Enclave _ -> Some Case.D5
  | ( (Secret.Enclave_owner _ | Secret.Host_owner | Secret.Sm_owner),
      (Exec_context.Host _ | Exec_context.Enclave _ | Exec_context.Monitor) ) ->
    None

let contains_substring ~needle hay =
  let n = String.length needle and m = String.length hay in
  if n = 0 then true
  else
    let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
    at 0

(* Classify one data observation. *)
let classify ~(structure : Structure.t) ~origin ~(owner : Secret.owner)
    ~(ctx : Exec_context.t) ~note ~detection =
  match structure with
  | Structure.Lfb -> (
    match origin with
    | Some Log.Prefetch -> Some Case.D1
    | Some Log.Ptw_walk -> Some Case.D2
    | Some Log.Memset_destroy -> Some Case.D3
    | Some Log.Explicit_load when detection = Fetched -> cross_boundary_case owner ctx
    | Some
        ( Log.Explicit_load | Log.Explicit_store | Log.Store_drain | Log.Csr_read
        | Log.Context_save | Log.Refill | Log.Branch_exec | Log.Writeback )
    | None ->
      None)
  | Structure.Reg_file ->
    if detection = Residue then None
    else if contains_substring ~needle:"forwarded-from-store-buffer" note then
      Some Case.D8
    else if contains_substring ~needle:"transient" note then
      cross_boundary_case owner ctx
    else None
  | Structure.L1i_data | Structure.L1d_data | Structure.L2_data
  | Structure.Store_buffer | Structure.Store_queue | Structure.Load_queue
  | Structure.Dtlb | Structure.Ptw_cache | Structure.Ubtb | Structure.Ftb
  | Structure.Hpm_counters | Structure.Wb_buffer | Structure.Prefetcher ->
    None

(* Provenance of a residue hit: the most recent write of the same value
   into the same structure. *)
let residue_provenance records ~structure ~value ~before_cycle =
  let best = ref None in
  List.iter
    (fun (r : Log.record) ->
      if r.Log.cycle <= before_cycle then
        match r.Log.event with
        | Log.Write { structure = s; entries; origin }
          when Structure.equal s structure
               && List.exists (fun (e : Log.entry) -> Int64.equal e.Log.data value) entries
          -> (
          match !best with
          | Some (c, _) when c >= r.Log.cycle -> ()
          | _ -> best := Some (r.Log.cycle, origin))
        | _ -> ())
    records;
  Option.map snd !best

(* {2 P1: data leakage} *)

let check_data log tracker records =
  let findings = ref [] in
  List.iter
    (fun (s : Secret.seeded) ->
      List.iter
        (fun (r : Log.record) ->
          if not (Secret.authorized s.Secret.owner r.Log.ctx) then begin
            let emit ~structure ~origin ~detection ~note =
              let case =
                classify ~structure ~origin ~owner:s.Secret.owner ~ctx:r.Log.ctx
                  ~note ~detection
              in
              findings :=
                {
                  case;
                  secret = Some s;
                  structure;
                  cycle = r.Log.cycle;
                  ctx = r.Log.ctx;
                  origin;
                  detection;
                  note;
                  last_pc = Log.last_commit_before log ~cycle:r.Log.cycle;
                }
                :: !findings
            in
            match r.Log.event with
            | Log.Write { structure; entries; origin } ->
              List.iter
                (fun (e : Log.entry) ->
                  if Int64.equal e.Log.data s.Secret.value then
                    if s.Secret.derived then begin
                      (* Derived sub-words only count as transient RF
                         forwards, to avoid matching benign short values. *)
                      if
                        Structure.equal structure Structure.Reg_file
                        && contains_substring ~needle:"transient" e.Log.note
                      then
                        emit ~structure ~origin:(Some origin) ~detection:Fetched
                          ~note:e.Log.note
                    end
                    else
                      emit ~structure ~origin:(Some origin) ~detection:Fetched
                        ~note:e.Log.note)
                entries
            | Log.Snapshot { structure; entries } ->
              if
                (not s.Secret.derived)
                && List.exists
                     (fun (e : Log.entry) -> Int64.equal e.Log.data s.Secret.value)
                     entries
              then
                let origin =
                  residue_provenance records ~structure ~value:s.Secret.value
                    ~before_cycle:r.Log.cycle
                in
                emit ~structure ~origin ~detection:Residue ~note:"snapshot residue"
            | Log.Mode_switch _ | Log.Commit _ | Log.Exception_raised _ -> ()
          end)
        records)
    (Secret.all tracker);
  !findings

(* {2 P2: metadata leakage} *)

(* M2: enclave-owned branch-predictor entries visible while the host
   executes. *)
let check_btb_residue records =
  let findings = ref [] in
  List.iter
    (fun (r : Log.record) ->
      match (r.Log.ctx, r.Log.event) with
      | Exec_context.Host _, Log.Snapshot { structure = (Structure.Ubtb | Structure.Ftb) as structure; entries }
        ->
        List.iter
          (fun (e : Log.entry) ->
            if
              contains_substring ~needle:"owner=enclave" e.Log.note
              && not (contains_substring ~needle:"id-tagged" e.Log.note)
            then
              findings :=
                {
                  case = Some Case.M2;
                  secret = None;
                  structure;
                  cycle = r.Log.cycle;
                  ctx = r.Log.ctx;
                  origin = Some Log.Branch_exec;
                  detection = Residue;
                  note = e.Log.note;
                  last_pc = None;
                }
                :: !findings)
          entries
      | _ -> ())
    records;
  !findings

(* M1: per-counter deltas accumulated during enclave execution that stay
   visible to the host and are actually read by it. *)
let hpm_snapshot_entries (r : Log.record) =
  match r.Log.event with
  | Log.Snapshot { structure = Structure.Hpm_counters; entries } -> Some entries
  | _ -> None

let event_counter_slots = [ 3; 4; 5; 6; 7; 8; 9; 10 ]

let slot_value entries slot =
  List.fold_left
    (fun acc (e : Log.entry) -> if e.Log.slot = slot then Some e.Log.data else acc)
    None entries

let check_hpc records =
  (* Locate the first enclave execution span. *)
  let rec find_entry = function
    | [] -> None
    | (r : Log.record) :: rest -> (
      match (r.Log.ctx, hpm_snapshot_entries r) with
      | Exec_context.Enclave _, Some entries -> Some (r, entries, rest)
      | _ -> find_entry rest)
  in
  match find_entry records with
  | None -> []
  | Some (entry_rec, entry_entries, rest) -> (
    (* Counter values when leaving the enclave: next HPM snapshot. *)
    let rec find_exit = function
      | [] -> None
      | (r : Log.record) :: rest -> (
        match hpm_snapshot_entries r with
        | Some entries when not (Exec_context.equal r.Log.ctx entry_rec.Log.ctx) ->
          Some (r, entries, rest)
        | _ -> find_exit rest)
    in
    match find_exit rest with
    | None -> []
    | Some (exit_rec, exit_entries, after_exit) ->
      let deltas =
        List.filter_map
          (fun slot ->
            match (slot_value entry_entries slot, slot_value exit_entries slot) with
            | Some a, Some b when not (Int64.equal a b) -> Some (slot, Int64.sub b a)
            | _ -> None)
          event_counter_slots
      in
      if deltas = [] then []
      else
        (* Does the host still see the accumulated values (no reset)? *)
        let host_sees =
          List.exists
            (fun (r : Log.record) ->
              match (r.Log.ctx, hpm_snapshot_entries r) with
              | Exec_context.Host _, Some entries ->
                List.exists
                  (fun (slot, _) ->
                    match (slot_value entries slot, slot_value exit_entries slot) with
                    | Some now, Some at_exit -> Int64.unsigned_compare now at_exit >= 0
                    | _ -> false)
                  deltas
              | _ -> false)
            after_exit
        in
        (* And did untrusted code actually read an event counter after the
           enclave ran? *)
        let host_read =
          List.exists
            (fun (r : Log.record) ->
              match (r.Log.ctx, r.Log.event) with
              | ( Exec_context.Host _,
                  Log.Write { structure = Structure.Reg_file; entries; origin = Log.Csr_read } ) ->
                r.Log.cycle > exit_rec.Log.cycle
                && List.exists
                     (fun (e : Log.entry) ->
                       contains_substring ~needle:"csrr hpmcounter" e.Log.note)
                     entries
              | _ -> false)
            after_exit
        in
        if host_sees && host_read then
          [
            {
              case = Some Case.M1;
              secret = None;
              structure = Structure.Hpm_counters;
              cycle = exit_rec.Log.cycle;
              ctx = Exec_context.Host Priv.Supervisor;
              origin = Some Log.Csr_read;
              detection = Residue;
              note =
                String.concat ", "
                  (List.map
                     (fun (slot, d) -> Printf.sprintf "hpm%d delta=%Ld" slot d)
                     deltas);
              last_pc = None;
            };
          ]
        else [])

(* {2 Entry point} *)

let dedupe findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let key =
        Printf.sprintf "%s/%s/%s/%s"
          (match f.case with Some c -> Case.to_string c | None -> "-")
          (Structure.to_string f.structure)
          (detection_to_string f.detection)
          (match f.secret with Some s -> Word.to_hex s.Secret.value | None -> "-")
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    findings

let case_rank f =
  match f.case with Some _ -> 0 | None -> 1

let check log tracker =
  let records = Log.to_list log in
  let findings =
    check_data log tracker records @ check_btb_residue records @ check_hpc records
  in
  let findings = dedupe findings in
  List.stable_sort (fun a b -> Int.compare (case_rank a) (case_rank b)) findings

let distinct_cases findings =
  List.sort_uniq Case.compare (List.filter_map (fun f -> f.case) findings)

let residue_warnings findings =
  List.length (List.filter (fun f -> f.case = None) findings)
