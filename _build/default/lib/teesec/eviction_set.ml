open! Import

let line_bytes = Memory.line_bytes

let l1_set_index (config : Config.t) ~addr =
  Int64.to_int
    (Int64.rem
       (Int64.shift_right_logical (Word.align_down addr ~alignment:line_bytes) 6)
       (Int64.of_int config.Config.l1_sets))

let same_set config ~addr1 ~addr2 =
  l1_set_index config ~addr:addr1 = l1_set_index config ~addr:addr2

let build config ~target ~from ~count =
  let target_line = Word.align_down target ~alignment:line_bytes in
  let rec scan addr acc remaining =
    if remaining = 0 then List.rev acc
    else if
      same_set config ~addr1:addr ~addr2:target
      && not (Int64.equal (Word.align_down addr ~alignment:line_bytes) target_line)
    then scan (Int64.add addr (Int64.of_int line_bytes)) (addr :: acc) (remaining - 1)
    else scan (Int64.add addr (Int64.of_int line_bytes)) acc remaining
  in
  scan (Word.align_down from ~alignment:line_bytes) [] count

let prime_instrs addrs =
  List.concat_map
    (fun addr -> [ Instr.Li (Instr.t1, addr); Instr.ld Instr.t0 Instr.t1 0L ])
    addrs
  @ [ Instr.Fence ]

(* The probe accumulates total access latency in a6: a clean (still
   primed) set costs #ways L1 hits; a set the victim touched costs at
   least one miss more. *)
let probe_instrs addrs =
  [ Instr.Li (Instr.a6, 0L) ]
  @ List.concat_map
      (fun addr ->
        [
          Instr.Csrr (Instr.a2, Csr.Cycle);
          Instr.Li (Instr.t1, addr);
          Instr.ld Instr.t0 Instr.t1 0L;
          Instr.Csrr (Instr.a3, Csr.Cycle);
          Instr.Alu (Instr.Sub, Instr.a4, Instr.a3, Instr.a2);
          Instr.Alu (Instr.Add, Instr.a6, Instr.a6, Instr.a4);
        ])
      addrs
