open! Import

(** The verification plan (§4.1).

    Assembled per core, the plan enumerates: the microarchitectural
    storage elements discovered by the netlist memory pass (§4.1.3, the
    automated step), the memory access modalities and their
    permission-check policies (§4.1.1–4.1.2), and the TEE software API
    (§4.1.4).  Table 1's automation summary is included as metadata. *)

type storage_entry = {
  structure : Structure.t option;
      (** Logged structure the element maps to, when it is part of the
          leakage surface. *)
  element : Netlist.Memory_pass.element;
}

type path_entry = {
  path : Access_path.t;
  policy : Access_path.perm_policy;
  cases : Case.id list;
}

type t = {
  core : Config.t;
  design : Netlist.Design.t;
  storage : storage_entry list;
  paths : path_entry list;
  tee_api : Sbi.call list;
}

(** [build config] assembles the plan for a core. *)
val build : Config.t -> t

val storage_element_count : t -> int
val total_state_bits : t -> int

(** [elements_for t structure] lists the netlist elements backing a
    logged structure. *)
val elements_for : t -> Structure.t -> Netlist.Memory_pass.element list

(** {1 Table 1: component automation} *)

type automation = Automatic | Automatable_manual | Manual

val automation_to_string : automation -> string

(** [(component, step, status)] rows of Table 1. *)
val automation_table : (string * string * automation) list

val pp : Format.formatter -> t -> unit
