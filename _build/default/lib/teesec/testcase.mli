open! Import

(** An assembled test case: the ordered gadget sequence the runner
    executes on a fresh machine, together with its parameters. *)

type t = {
  id : int;
  path : Access_path.t;
  gadgets : Gadget.t list;  (** Setup and helper chain, access gadget last. *)
  params : Params.t;
}

val access_gadget : t -> Gadget.t
val name : t -> string
val pp : Format.formatter -> t -> unit
