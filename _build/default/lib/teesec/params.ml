open! Import

type t = { offset : int; width : int; variant : int; seed : Word.t }

let default = { offset = 0; width = 8; variant = 0; seed = 0xDEADBEEFL }

let make ?(offset = 0) ?(width = 8) ?(variant = 0) ?(seed = 0xDEADBEEFL) () =
  { offset; width; variant; seed }

let pp fmt t =
  Format.fprintf fmt "offset=%d width=%d variant=%d seed=%s" t.offset t.width
    t.variant (Word.to_hex t.seed)

let to_string t = Format.asprintf "%a" pp t
