open! Import

(** Eviction-set construction.

    The classic machinery behind Prime+Probe (paper §2.2): given the
    cache geometry, compute attacker-accessible addresses that map to
    the same set as a target address.  Priming the set with [ways] such
    lines guarantees the target is evicted; probing them afterwards and
    timing each access reveals whether the victim touched the set in
    between.

    TEESec's helper gadgets use targeted eviction for state setup; this
    module exposes the same computation for side-channel demonstrations
    (see [examples/cache_prime_probe.ml]). *)

(** [l1_set_index config ~addr] is the L1D set the address maps to. *)
val l1_set_index : Config.t -> addr:Word.t -> int

(** [same_set config ~addr1 ~addr2] — do the two addresses conflict in
    the L1D? *)
val same_set : Config.t -> addr1:Word.t -> addr2:Word.t -> bool

(** [build config ~target ~from ~count] returns [count] line-aligned
    addresses at or above [from] that map to [target]'s L1D set (and are
    distinct from [target]'s line). *)
val build : Config.t -> target:Word.t -> from:Word.t -> count:int -> Word.t list

(** [prime_instrs addrs] / [probe_instrs addrs] are host instruction
    sequences that touch every address of the set; the probe brackets
    each access with cycle-counter reads and accumulates the total
    latency in [a6]. *)
val prime_instrs : Word.t list -> Instr.t list

val probe_instrs : Word.t list -> Instr.t list
