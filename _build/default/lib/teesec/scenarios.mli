open! Import

(** Case-study scenarios reproducing the paper's figures.

    Each scenario drives a small, hand-written flow on a given core and
    returns a textual trace (the relevant simulation-log lines) plus
    named observations — the quantities the corresponding figure
    illustrates (e.g. Figure 5's hit-vs-miss response cycles). *)

type trace = {
  title : string;
  lines : string list;  (** Relevant simulation-log excerpts. *)
  observations : (string * string) list;  (** Named measured quantities. *)
}

val pp_trace : Format.formatter -> trace -> unit

(** Figure 2: abusing the L1 next-line prefetcher to pull enclave data
    into the LFB. *)
val prefetcher : Config.t -> trace

(** Figure 3: hijacking the host root page table into enclave/SM memory
    and forcing a hardware page walk. *)
val ptw : Config.t -> trace

(** Figure 4: enclave-destroy memset dragging dying-enclave secrets
    through the LFB, where they persist after the context switch. *)
val destroy_residue : Config.t -> trace

(** Figure 5: XiangShan's fake-hit behaviour — response latency and data
    for a faulting load with the secret present vs absent in the L1D. *)
val xs_fake_hit : Config.t -> trace

(** Figure 6: leaking a privileged performance counter through the store
    buffer via an interrupt landing in the lazy CSR-check window. *)
val hpc_interrupt : Config.t -> trace

(** Figure 7: host and enclave branch PCs aliasing in the uBTB, and the
    probe timing difference that reveals the enclave branch outcome. *)
val btb_alias : Config.t -> trace

(** All six scenarios with their figure ids. *)
val all : Config.t -> (string * trace) list

(** Extension ablation for Figure 7: sweep the uBTB partial-tag width
    and report, per width, whether the host/enclave branch PCs still
    alias and whether the prime-and-probe timing still distinguishes the
    enclave branch outcome.  With this memory layout the PCs differ at
    bit 27, so widening the tag until it covers that bit kills the
    channel — quantifying how much tag the predictor would need. *)
val btb_tag_sweep : Config.t -> tag_bits:int list -> (int * bool * bool) list
