open! Import

(** Checker reports, in the style of the artifact's [CheckerLog.txt]. *)

(** [render_finding fmt f] prints the per-finding block: secret value,
    structure, simulation cycle and last committed PC. *)
val render_finding : Format.formatter -> Checker.finding -> unit

(** [render outcome findings] prints the full report for one test
    case. *)
val render : Format.formatter -> Runner.outcome -> Checker.finding list -> unit

(** [summary_line testcase findings] is a one-line digest used by the
    campaign driver. *)
val summary_line : Testcase.t -> Checker.finding list -> string
