open! Import

(** Abstract execution model for gadget assembly.

    The gadget assembler needs to know, without running the simulator,
    whether the microarchitectural preconditions of an access gadget hold
    after a candidate helper sequence (§4.2: "an execution model is
    constructed automatically to capture the expected microarchitectural
    state following gadget execution").  This module is that model: a
    small abstract state over which every gadget declares a precondition
    and a state-transformer. *)

(** Where the victim secret currently lives. *)
type secret_residence = {
  mutable in_l1 : bool;
  mutable in_l2 : bool;
  mutable in_mem : bool;
  mutable in_store_buffer : bool;
}

type t = {
  mutable victim_state : Enclave.state option;
      (** [None] until a victim enclave is created. *)
  mutable attacker_enclave : bool;  (** A second enclave exists. *)
  secret : secret_residence;  (** Victim-enclave secret residence. *)
  mutable sm_secret_in_l1 : bool;
  mutable host_secret_in_l1 : bool;
  mutable host_page_tables : bool;
  mutable hpc_primed : bool;  (** Host recorded a counter baseline. *)
  mutable btb_primed : bool;  (** Host primed the aliasing uBTB entry. *)
  mutable enclave_did_work : bool;
      (** The victim executed data/branch activity (needed by M1/M2). *)
}

val initial : unit -> t
val copy : t -> t

(** [pp] shows the abstract state compactly, for assembler diagnostics. *)
val pp : Format.formatter -> t -> unit
