open! Import

(** The paper's leakage cases (Table 3).

    Eight data cases (violations of principle P1) and two metadata cases
    (violations of P2).  [expected] encodes the paper's per-core results,
    which EXPERIMENTS.md compares our campaign output against. *)

type id = D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 | M1 | M2

val all : id list
val compare : id -> id -> int
val equal : id -> id -> bool
val to_string : id -> string
val pp : Format.formatter -> id -> unit

(** Data cases violate P1; metadata cases violate P2. *)
type principle = P1 | P2

val principle : id -> principle

(** One-line description, following the paper's wording. *)
val description : id -> string

(** Secret source structure reported in Table 3. *)
val source : id -> Structure.t

(** Access path summary (the Table 3 middle column). *)
val access_path : id -> string

(** [expected id core] is the paper's Table 3 verdict: was the case found
    on this core? *)
val expected : id -> Config.core_kind -> bool
