open! Import

(** Gadget assembler.

    Builds complete test sequences from the gadget library (§4.2): given
    an access path and parameters, it selects the setup/helper chain that
    establishes the access gadget's preconditions, validates the chain
    against the abstract execution model, and packages the result as a
    {!Testcase}.  A chain whose preconditions cannot be satisfied is a
    programming error in the library and raises. *)

exception Invalid_chain of string

(** [recipe path ~params] is the canonical setup/helper chain for
    [path] (the access gadget is appended by {!assemble}). *)
val recipe : Access_path.t -> params:Params.t -> Gadget.t list

(** [assemble ~id path ~params] builds and validates the test case. *)
val assemble : id:int -> Access_path.t -> params:Params.t -> Testcase.t

(** [validate gadgets] replays the chain on the abstract model, raising
    [Invalid_chain] at the first unsatisfied precondition.  Returns the
    final model state. *)
val validate : Gadget.t list -> Exec_model.t
