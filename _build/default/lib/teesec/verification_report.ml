open! Import

type options = {
  full_corpus : bool;
  include_scenarios : bool;
  include_recommendations : bool;
}

let default_options =
  { full_corpus = false; include_scenarios = true; include_recommendations = true }

let generate ?(options = default_options) configs =
  let buf = Buffer.create 16384 in
  let fmt = Format.formatter_of_buffer buf in
  let line s = Format.fprintf fmt "%s@." s in
  let verbatim body =
    line "```";
    Format.fprintf fmt "%s" body;
    line "```";
    line ""
  in
  line "# TEESec verification report";
  line "";
  Format.fprintf fmt
    "Designs under test: %s.  Corpus: %s.  All results below are measured on \
     this run; 'paper' columns refer to ISCA 2023 Table 3/4.@.@."
    (String.concat ", " (List.map (fun c -> c.Config.name) configs))
    (if options.full_corpus then "full (585 test cases)"
     else "representative slice (2 per access path)");

  line "## Verification plans";
  line "";
  List.iter
    (fun config ->
      let plan = Plan.build config in
      Format.fprintf fmt
        "- **%s**: %d storage elements (%d state bits), %d access paths, %d TEE \
         API entry points.@."
        config.Config.name
        (Plan.storage_element_count plan)
        (Plan.total_state_bits plan)
        (List.length plan.Plan.paths)
        (List.length plan.Plan.tee_api))
    configs;
  line "";

  line "## Gadget inventory";
  line "";
  verbatim (Tables.table2 ());

  line "## Leakage campaign (Table 3)";
  line "";
  let testcases =
    if options.full_corpus then Fuzzer.corpus () else Mitigation_eval.slice ()
  in
  let campaign_results = List.map (fun c -> Campaign.run c testcases) configs in
  verbatim (Tables.table3 campaign_results);
  List.iter
    (fun (r : Campaign.result) ->
      Format.fprintf fmt "- %s: %s.@." r.Campaign.config.Config.name
        (if Campaign.matches_paper r then "matches the paper's verdicts"
         else
           "DIFFERS from the paper: "
           ^ String.concat ", "
               (List.map
                  (fun (c, e, g) ->
                    Printf.sprintf "%s expected %b measured %b" (Case.to_string c) e g)
                  (Campaign.mismatches r))))
    campaign_results;
  line "";

  line "## Mitigation matrix (Table 4)";
  line "";
  let mitigation_results = List.map Mitigation_eval.evaluate configs in
  verbatim (Tables.table4 mitigation_results);

  line "## Coverage";
  line "";
  List.iter
    (fun config ->
      verbatim
        (Format.asprintf "%a" Coverage.pp (Coverage.measure config testcases)))
    configs;

  if options.include_recommendations then begin
    line "## Recommended countermeasures";
    line "";
    List.iter
      (fun config ->
        verbatim
          (Format.asprintf "%a" Recommend.pp_result
             (Recommend.evaluate ~max_size:2 config)))
      configs
  end;

  if options.include_scenarios then begin
    line "## Case studies (paper figures 2-7)";
    line "";
    List.iter
      (fun config ->
        List.iter
          (fun (_, trace) ->
            Format.fprintf fmt "### %s@.@." trace.Scenarios.title;
            List.iter
              (fun (k, v) -> Format.fprintf fmt "- %s: %s@." k v)
              trace.Scenarios.observations;
            line "")
          (Scenarios.all config))
      configs
  end;

  Format.pp_print_flush fmt ();
  Buffer.contents buf

let save ?options ~path configs =
  let report = generate ?options configs in
  let oc = open_out path in
  output_string oc report;
  close_out oc;
  String.length report
