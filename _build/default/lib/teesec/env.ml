open! Import

type t = {
  sm : Security_monitor.t;
  machine : Machine.t;
  tracker : Secret.tracker;
  params : Params.t;
  mutable victim : int option;
  mutable attacker : int option;
  mutable hpc_baseline : (int * Word.t) list;
  mutable program_trace : (string * Program.t) list;
}

let create config params =
  let machine = Machine.create config in
  let sm = Security_monitor.install machine in
  {
    sm;
    machine;
    tracker = Secret.create_tracker ();
    params;
    victim = None;
    attacker = None;
    hpc_baseline = [];
    program_trace = [];
  }

let record_program t ~label prog = t.program_trace <- (label, prog) :: t.program_trace
let programs t = List.rev t.program_trace

let victim_exn t =
  match t.victim with
  | Some eid -> eid
  | None -> invalid_arg "Env.victim_exn: no victim enclave created"

let attacker_exn t =
  match t.attacker with
  | Some eid -> eid
  | None -> invalid_arg "Env.attacker_exn: no attacker enclave created"

let victim_secret_line t =
  (* Secrets live in the second half of the region so that enclave code
     (laid out from the region base) never collides with them. *)
  Int64.add
    (Memory_layout.enclave_base (victim_exn t))
    (Int64.of_int (Memory_layout.enclave_size / 2))

let secret_addr t = Int64.add (victim_secret_line t) (Int64.of_int t.params.Params.offset)
let host_secret_addr _t = Memory_layout.host_data_base
