open! Import

type t = {
  id : int;
  path : Access_path.t;
  gadgets : Gadget.t list;
  params : Params.t;
}

let access_gadget t = List.nth t.gadgets (List.length t.gadgets - 1)

let name t =
  Printf.sprintf "#%d %s [%s]" t.id (Access_path.to_string t.path)
    (Params.to_string t.params)

let pp fmt t =
  Format.fprintf fmt "%s:" (name t);
  List.iter (fun g -> Format.fprintf fmt " %s" (Gadget.name g)) t.gadgets
