open! Import

let render_finding fmt (f : Checker.finding) =
  (match f.Checker.case with
  | Some c when Case.principle c = Case.P1 ->
    Format.fprintf fmt "Enclave secret leakage detected! [%s]@." (Case.to_string c)
  | Some c ->
    Format.fprintf fmt "Enclave metadata leakage detected! [%s]@." (Case.to_string c)
  | None -> Format.fprintf fmt "Residue warning (no exploitable case mapped)@.");
  (match f.Checker.secret with
  | Some s ->
    Format.fprintf fmt "Secret value: %a@." Word.pp s.Secret.value;
    Format.fprintf fmt "Seeded at: %a (owner %s%s)@." Word.pp s.Secret.addr
      (Secret.owner_to_string s.Secret.owner)
      (if s.Secret.derived then ", derived" else "")
  | None -> Format.fprintf fmt "Metadata: %s@." f.Checker.note);
  Format.fprintf fmt "Microarchitecture structure: %s@."
    (Structure.to_string f.Checker.structure);
  Format.fprintf fmt "Sim Cycle No.: %d@." f.Checker.cycle;
  Format.fprintf fmt "Observing context: %s@."
    (Exec_context.to_string f.Checker.ctx);
  (match f.Checker.origin with
  | Some o -> Format.fprintf fmt "Access path origin: %s@." (Log.origin_to_string o)
  | None -> ());
  (match f.Checker.last_pc with
  | Some pc -> Format.fprintf fmt "PC of Last Committed Inst.: %a@." Word.pp pc
  | None -> ());
  Format.fprintf fmt "@."

let render fmt (outcome : Runner.outcome) findings =
  Format.fprintf fmt "=== TEESec Checker report: %s ===@."
    (Testcase.name outcome.Runner.testcase);
  Format.fprintf fmt "Simulated cycles: %d, log records: %d, seeded secrets: %d@.@."
    outcome.Runner.cycles outcome.Runner.log_records
    (Secret.count outcome.Runner.tracker);
  if findings = [] then Format.fprintf fmt "No leakage detected.@."
  else List.iter (render_finding fmt) findings

let summary_line (testcase : Testcase.t) findings =
  let cases = Checker.distinct_cases findings in
  let cases_str =
    if cases = [] then "clean"
    else String.concat "," (List.map Case.to_string cases)
  in
  Printf.sprintf "%-60s %s (%d residue warnings)"
    (Testcase.name testcase) cases_str
    (Checker.residue_warnings findings)
