lib/teesec/checker.mli: Case Exec_context Format Import Log Secret Structure Word
