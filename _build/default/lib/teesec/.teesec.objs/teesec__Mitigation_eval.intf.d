lib/teesec/mitigation_eval.mli: Case Config Format Import Mitigation Testcase
