lib/teesec/campaign.mli: Case Config Format Import Testcase
