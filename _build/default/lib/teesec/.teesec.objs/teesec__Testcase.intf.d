lib/teesec/testcase.mli: Access_path Format Gadget Import Params
