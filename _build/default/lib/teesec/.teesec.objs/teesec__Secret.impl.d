lib/teesec/secret.ml: Exec_context Format Import Int64 List Memory Printf Word
