lib/teesec/campaign.ml: Case Checker Config Format Fuzzer Hashtbl Import List Option Report Runner Testcase Unix
