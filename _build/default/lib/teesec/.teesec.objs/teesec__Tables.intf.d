lib/teesec/tables.mli: Campaign Import Mitigation_eval
