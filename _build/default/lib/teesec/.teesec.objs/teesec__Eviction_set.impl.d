lib/teesec/eviction_set.ml: Config Csr Import Instr Int64 List Memory Word
