lib/teesec/secret.mli: Exec_context Format Import Word
