lib/teesec/params.ml: Format Import Word
