lib/teesec/plan.ml: Access_path Case Config Format Import List Netlist Sbi String Structure
