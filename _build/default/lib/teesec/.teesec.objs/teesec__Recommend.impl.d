lib/teesec/recommend.ml: Campaign Case Config Float Format Import Int List Mitigation Mitigation_eval Overhead String
