lib/teesec/coverage.ml: Access_path Config Format Fuzzer Hashtbl Import List Log Option Runner String Structure Testcase
