lib/teesec/params.mli: Format Import Word
