lib/teesec/assembler.ml: Access_path Exec_model Format Gadget Gadget_library Import List Params Testcase
