lib/teesec/case.ml: Config Format Import Int Structure
