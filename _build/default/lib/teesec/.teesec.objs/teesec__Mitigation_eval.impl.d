lib/teesec/mitigation_eval.ml: Access_path Assembler Campaign Case Config Format Fuzzer Import List Mitigation String
