lib/teesec/eviction_set.mli: Config Import Instr Word
