lib/teesec/fuzzer.mli: Access_path Import Params Testcase Word
