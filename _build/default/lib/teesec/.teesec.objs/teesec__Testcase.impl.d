lib/teesec/testcase.ml: Access_path Format Gadget Import List Params Printf
