lib/teesec/coverage.mli: Access_path Config Format Import Log Structure Testcase
