lib/teesec/import.ml: Riscv Simlog Tee Uarch
