lib/teesec/env.ml: Import Int64 List Machine Memory_layout Params Program Secret Security_monitor Word
