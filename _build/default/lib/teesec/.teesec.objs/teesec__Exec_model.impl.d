lib/teesec/exec_model.ml: Enclave Format Import
