lib/teesec/report.ml: Case Checker Exec_context Format Import List Log Printf Runner Secret String Structure Testcase Word
