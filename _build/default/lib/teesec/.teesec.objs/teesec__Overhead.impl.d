lib/teesec/overhead.ml: Buffer Config Csr Env Format Gadget Gadget_library Hpc Import Instr Int64 List Machine Memory_layout Mitigation Params Printf Program Security_monitor String
