lib/teesec/checker.ml: Case Exec_context Format Hashtbl Import Int Int64 List Log Option Printf Priv Secret String Structure Word
