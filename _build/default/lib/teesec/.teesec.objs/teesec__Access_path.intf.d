lib/teesec/access_path.mli: Case Config Format Import Structure
