lib/teesec/overhead.mli: Config Format Import Mitigation
