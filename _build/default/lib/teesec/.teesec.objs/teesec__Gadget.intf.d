lib/teesec/gadget.mli: Access_path Env Exec_model Format Import
