lib/teesec/exec_model.mli: Enclave Format Import
