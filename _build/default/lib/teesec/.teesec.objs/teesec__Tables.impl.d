lib/teesec/tables.ml: Access_path Buffer Campaign Case Config Format Fuzzer Gadget_library Import List Mitigation Mitigation_eval Plan Printf String
