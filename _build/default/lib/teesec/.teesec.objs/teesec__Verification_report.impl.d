lib/teesec/verification_report.ml: Buffer Campaign Case Config Coverage Format Fuzzer Import List Mitigation_eval Plan Printf Recommend Scenarios String Tables
