lib/teesec/fuzzer.ml: Access_path Array Assembler Import Int64 List Params Word
