lib/teesec/verification_report.mli: Config Import
