lib/teesec/access_path.ml: Case Config Format Import Structure
