lib/teesec/assembler.mli: Access_path Exec_model Gadget Import Params Testcase
