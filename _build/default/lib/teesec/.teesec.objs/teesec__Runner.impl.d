lib/teesec/runner.ml: Env Exec_context Gadget Import List Log Machine Priv Secret Testcase
