lib/teesec/gadget_library.mli: Access_path Gadget Import Word
