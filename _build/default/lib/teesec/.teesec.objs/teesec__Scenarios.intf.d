lib/teesec/scenarios.mli: Config Format Import
