lib/teesec/runner.mli: Config Env Import Log Secret Testcase
