lib/teesec/env.mli: Config Import Machine Params Program Secret Security_monitor Word
