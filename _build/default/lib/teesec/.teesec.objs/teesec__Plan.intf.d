lib/teesec/plan.mli: Access_path Case Config Format Import Netlist Sbi Structure
