lib/teesec/case.mli: Config Format Import Structure
