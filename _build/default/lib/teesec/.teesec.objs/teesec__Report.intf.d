lib/teesec/report.mli: Checker Format Import Runner Testcase
