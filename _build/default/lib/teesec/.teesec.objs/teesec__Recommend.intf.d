lib/teesec/recommend.mli: Case Config Format Import Mitigation
