lib/teesec/gadget.ml: Access_path Env Exec_model Format Import Printf
