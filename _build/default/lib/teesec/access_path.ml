open! Import

type t =
  | Exp_acc_enc_l1
  | Exp_acc_enc_l2
  | Exp_acc_enc_mem
  | Exp_acc_enc_stb
  | Exp_acc_enc_misaligned
  | Exp_acc_sm
  | Exp_acc_cross_enclave
  | Exp_acc_host_from_enclave
  | Exp_store_enc
  | Imp_acc_pref
  | Imp_acc_ptw_root
  | Imp_acc_ptw_legit
  | Imp_acc_destroy_memset
  | Meta_hpc
  | Meta_btb

let data_paths =
  [
    Exp_acc_enc_l1;
    Exp_acc_enc_l2;
    Exp_acc_enc_mem;
    Exp_acc_enc_stb;
    Exp_acc_enc_misaligned;
    Exp_acc_sm;
    Exp_acc_cross_enclave;
    Exp_acc_host_from_enclave;
    Exp_store_enc;
    Imp_acc_pref;
    Imp_acc_ptw_root;
    Imp_acc_ptw_legit;
    Imp_acc_destroy_memset;
  ]

let metadata_paths = [ Meta_hpc; Meta_btb ]
let all = data_paths @ metadata_paths
let equal (a : t) b = a = b

let to_string = function
  | Exp_acc_enc_l1 -> "Exp_Acc_Enc_L1"
  | Exp_acc_enc_l2 -> "Exp_Acc_Enc_L2"
  | Exp_acc_enc_mem -> "Exp_Acc_Enc_Mem"
  | Exp_acc_enc_stb -> "Exp_Acc_Enc_StB"
  | Exp_acc_enc_misaligned -> "Exp_Acc_Enc_Misaligned"
  | Exp_acc_sm -> "Exp_Acc_SM"
  | Exp_acc_cross_enclave -> "Exp_Acc_Cross_Enclave"
  | Exp_acc_host_from_enclave -> "Exp_Acc_Host_From_Enclave"
  | Exp_store_enc -> "Exp_Store_Enc"
  | Imp_acc_pref -> "Imp_Acc_Pref"
  | Imp_acc_ptw_root -> "Imp_Acc_PTW_Root"
  | Imp_acc_ptw_legit -> "Imp_Acc_PTW_Legit"
  | Imp_acc_destroy_memset -> "Imp_Acc_Destroy_Memset"
  | Meta_hpc -> "Meta_HPC"
  | Meta_btb -> "Meta_BTB"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let description = function
  | Exp_acc_enc_l1 -> "host load of PMP-protected enclave data resident in the L1D"
  | Exp_acc_enc_l2 -> "host load of enclave data resident in the L2 but not the L1D"
  | Exp_acc_enc_mem -> "host load of enclave data resident only in memory"
  | Exp_acc_enc_stb -> "host load of enclave data still pending in the store buffer"
  | Exp_acc_enc_misaligned -> "misaligned host load straddling into enclave data"
  | Exp_acc_sm -> "host load of security-monitor memory"
  | Exp_acc_cross_enclave -> "load from an attacker enclave into a victim enclave"
  | Exp_acc_host_from_enclave -> "enclave load of host user/supervisor memory"
  | Exp_store_enc -> "host store into enclave memory"
  | Imp_acc_pref -> "next-line prefetch triggered at an enclave region boundary"
  | Imp_acc_ptw_root -> "page-table walk with the root pointer hijacked into protected memory"
  | Imp_acc_ptw_legit -> "page-table walk through legitimate host tables"
  | Imp_acc_destroy_memset -> "store-drain refills of the enclave-destroy memset"
  | Meta_hpc -> "hardware performance counter readout across the enclave boundary"
  | Meta_btb -> "uBTB collision between aliasing host and enclave branches"

type explicitness = Explicit | Implicit

let explicitness = function
  | Exp_acc_enc_l1 | Exp_acc_enc_l2 | Exp_acc_enc_mem | Exp_acc_enc_stb
  | Exp_acc_enc_misaligned | Exp_acc_sm | Exp_acc_cross_enclave
  | Exp_acc_host_from_enclave | Exp_store_enc | Meta_hpc | Meta_btb ->
    Explicit
  | Imp_acc_pref | Imp_acc_ptw_root | Imp_acc_ptw_legit | Imp_acc_destroy_memset ->
    Implicit

type perm_policy = Checked_serial | Checked_parallel | Unchecked

let perm_policy_to_string = function
  | Checked_serial -> "checked-serial"
  | Checked_parallel -> "checked-parallel"
  | Unchecked -> "unchecked"

let perm_policy t (core : Config.core_kind) =
  match (t, core) with
  (* Explicit accesses race the PMP check on both cores. *)
  | ( ( Exp_acc_enc_l1 | Exp_acc_enc_l2 | Exp_acc_enc_mem | Exp_acc_enc_stb
      | Exp_acc_enc_misaligned | Exp_acc_sm | Exp_acc_cross_enclave
      | Exp_acc_host_from_enclave | Exp_store_enc ),
      _ ) ->
    Checked_parallel
  (* The hardware prefetcher performs no permission check at all. *)
  | Imp_acc_pref, _ -> Unchecked
  (* XiangShan checks PMP before issuing PTW refills; BOOM checks after
     the access has already gone out. *)
  | (Imp_acc_ptw_root | Imp_acc_ptw_legit), Config.Xiangshan -> Checked_serial
  | (Imp_acc_ptw_root | Imp_acc_ptw_legit), Config.Boom -> Checked_parallel
  (* The destroy memset runs in machine mode: no check applies. *)
  | Imp_acc_destroy_memset, _ -> Unchecked
  (* Counter reads are privilege-checked CSR accesses. *)
  | Meta_hpc, Config.Boom -> Checked_serial
  | Meta_hpc, Config.Xiangshan -> Checked_parallel
  (* BTB lookups carry no permission notion. *)
  | Meta_btb, _ -> Unchecked

let candidate_cases = function
  | Exp_acc_enc_l1 -> [ Case.D4 ]
  | Exp_acc_enc_l2 -> [ Case.D4 ]
  | Exp_acc_enc_mem -> [ Case.D4; Case.D8 ]
  | Exp_acc_enc_stb -> [ Case.D8; Case.D4 ]
  | Exp_acc_enc_misaligned -> [ Case.D4 ]
  | Exp_acc_sm -> [ Case.D5 ]
  | Exp_acc_cross_enclave -> [ Case.D6 ]
  | Exp_acc_host_from_enclave -> [ Case.D7 ]
  | Exp_store_enc -> []
  | Imp_acc_pref -> [ Case.D1 ]
  | Imp_acc_ptw_root -> [ Case.D2 ]
  | Imp_acc_ptw_legit -> []
  | Imp_acc_destroy_memset -> [ Case.D3 ]
  | Meta_hpc -> [ Case.M1 ]
  | Meta_btb -> [ Case.M2 ]

let structures = function
  | Exp_acc_enc_l1 -> [ Structure.L1d_data; Structure.Reg_file ]
  | Exp_acc_enc_l2 -> [ Structure.L2_data; Structure.Lfb; Structure.Reg_file ]
  | Exp_acc_enc_mem -> [ Structure.Lfb; Structure.Reg_file ]
  | Exp_acc_enc_stb -> [ Structure.Store_buffer; Structure.Reg_file ]
  | Exp_acc_enc_misaligned -> [ Structure.L1d_data; Structure.Reg_file ]
  | Exp_acc_sm -> [ Structure.L1d_data; Structure.Reg_file ]
  | Exp_acc_cross_enclave -> [ Structure.L1d_data; Structure.Reg_file ]
  | Exp_acc_host_from_enclave -> [ Structure.L1d_data; Structure.Reg_file ]
  | Exp_store_enc -> [ Structure.Store_buffer ]
  | Imp_acc_pref -> [ Structure.Prefetcher; Structure.Lfb ]
  | Imp_acc_ptw_root -> [ Structure.Dtlb; Structure.Ptw_cache; Structure.Lfb ]
  | Imp_acc_ptw_legit -> [ Structure.Dtlb; Structure.Ptw_cache ]
  | Imp_acc_destroy_memset -> [ Structure.Store_buffer; Structure.Lfb ]
  | Meta_hpc -> [ Structure.Hpm_counters; Structure.Reg_file ]
  | Meta_btb -> [ Structure.Ubtb; Structure.Ftb ]
