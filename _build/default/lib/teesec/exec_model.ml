open! Import

type secret_residence = {
  mutable in_l1 : bool;
  mutable in_l2 : bool;
  mutable in_mem : bool;
  mutable in_store_buffer : bool;
}

type t = {
  mutable victim_state : Enclave.state option;
  mutable attacker_enclave : bool;
  secret : secret_residence;
  mutable sm_secret_in_l1 : bool;
  mutable host_secret_in_l1 : bool;
  mutable host_page_tables : bool;
  mutable hpc_primed : bool;
  mutable btb_primed : bool;
  mutable enclave_did_work : bool;
}

let initial () =
  {
    victim_state = None;
    attacker_enclave = false;
    secret = { in_l1 = false; in_l2 = false; in_mem = false; in_store_buffer = false };
    sm_secret_in_l1 = false;
    host_secret_in_l1 = false;
    host_page_tables = false;
    hpc_primed = false;
    btb_primed = false;
    enclave_did_work = false;
  }

let copy t =
  {
    t with
    secret =
      {
        in_l1 = t.secret.in_l1;
        in_l2 = t.secret.in_l2;
        in_mem = t.secret.in_mem;
        in_store_buffer = t.secret.in_store_buffer;
      };
  }

let pp fmt t =
  let flag name b = if b then Format.fprintf fmt " %s" name in
  Format.fprintf fmt "victim=%s"
    (match t.victim_state with
    | None -> "none"
    | Some s -> Enclave.state_to_string s);
  flag "attacker" t.attacker_enclave;
  flag "secret:l1" t.secret.in_l1;
  flag "secret:l2" t.secret.in_l2;
  flag "secret:mem" t.secret.in_mem;
  flag "secret:stb" t.secret.in_store_buffer;
  flag "sm-secret:l1" t.sm_secret_in_l1;
  flag "host-secret:l1" t.host_secret_in_l1;
  flag "page-tables" t.host_page_tables;
  flag "hpc-primed" t.hpc_primed;
  flag "btb-primed" t.btb_primed;
  flag "enclave-work" t.enclave_did_work
