open! Import

type id = D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 | M1 | M2

let all = [ D1; D2; D3; D4; D5; D6; D7; D8; M1; M2 ]

let index = function
  | D1 -> 0
  | D2 -> 1
  | D3 -> 2
  | D4 -> 3
  | D5 -> 4
  | D6 -> 5
  | D7 -> 6
  | D8 -> 7
  | M1 -> 8
  | M2 -> 9

let compare a b = Int.compare (index a) (index b)
let equal a b = index a = index b

let to_string = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | D7 -> "D7"
  | D8 -> "D8"
  | M1 -> "M1"
  | M2 -> "M2"

let pp fmt t = Format.pp_print_string fmt (to_string t)

type principle = P1 | P2

let principle = function
  | D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 -> P1
  | M1 | M2 -> P2

let description = function
  | D1 -> "Leaking enclave data via L1D prefetcher abuse"
  | D2 -> "Leaking enclave/SM data through page table walks"
  | D3 -> "Leaking LFB residual data after enclave destroy"
  | D4 -> "Leaking enclave data/code to host user/supervisor"
  | D5 -> "Leaking Keystone SM data/code to host user/supervisor"
  | D6 -> "Leaking enclave data/code to another enclave"
  | D7 -> "Leaking host user/supervisor data/code to enclave"
  | D8 -> "Leaking enclave data/code through store buffer"
  | M1 -> "Revealing enclave control-flow/data access patterns via performance counters"
  | M2 -> "Revealing enclave control-flow via conflicts on branch prediction units"

let source = function
  | D1 | D2 | D3 -> Structure.Lfb
  | D4 | D5 | D6 | D7 | D8 -> Structure.Reg_file
  | M1 -> Structure.Hpm_counters
  | M2 -> Structure.Ubtb

let access_path = function
  | D1 ->
    "Load (Exp) -> L1 miss -> Prefetcher (Imp) -> L2 req -> LFB refill"
  | D2 ->
    "Load (Exp) -> TLB miss -> Page table walk (Imp) -> L1 miss -> L2 req -> LFB refill"
  | D3 -> "Store (Exp) -> L1 miss -> L2 req -> LFB refill (stale enclave data)"
  | D4 | D5 | D6 | D7 ->
    "Load (Exp) -> TLB/PMP check -> L1 hit -> Write-back RF -> Secret forwarded"
  | D8 ->
    "Load (Exp) -> TLB/PMP check -> Store buffer hit -> Write-back RF -> Secret forwarded"
  | M1 -> "Reset perf counters -> Enter enclave -> Stop enclave -> Read perf counters"
  | M2 ->
    "Enter enclave -> Cond. branch -> Stop enclave -> Cond. branch mapping to same uBTB entry -> Check cycle count"

let expected id (core : Config.core_kind) =
  match (id, core) with
  | (D1 | D2 | D3), Config.Boom -> true
  | (D1 | D2 | D3), Config.Xiangshan -> false
  | (D4 | D5 | D6 | D7), (Config.Boom | Config.Xiangshan) -> true
  | D8, Config.Boom -> false
  | D8, Config.Xiangshan -> true
  | (M1 | M2), (Config.Boom | Config.Xiangshan) -> true
