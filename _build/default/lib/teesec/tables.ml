open! Import

let with_buffer f =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let rule fmt width = Format.fprintf fmt "%s@." (String.make width '-')

let table1 () =
  with_buffer (fun fmt ->
      Format.fprintf fmt "Table 1: TEESec components and automation status@.";
      rule fmt 78;
      Format.fprintf fmt "%-24s %-42s %s@." "Component" "Step" "Status";
      rule fmt 78;
      List.iter
        (fun (component, step, automation) ->
          Format.fprintf fmt "%-24s %-42s %s@." component step
            (Plan.automation_to_string automation))
        Plan.automation_table;
      rule fmt 78)

let table2 ?timings () =
  with_buffer (fun fmt ->
      Format.fprintf fmt
        "Table 2: gadget inventory, generated test cases and phase timing@.";
      rule fmt 78;
      let setup = List.length Gadget_library.setup_gadgets in
      let helper = List.length Gadget_library.helper_gadgets in
      let access = List.length Gadget_library.access_gadgets in
      let total = Fuzzer.total_cases () in
      Format.fprintf fmt "%-22s %8s %8s@." "" "paper" "ours";
      Format.fprintf fmt "%-22s %8d %8d@." "Setup gadgets" 8 setup;
      Format.fprintf fmt "%-22s %8d %8d@." "Helper gadgets" 12 helper;
      Format.fprintf fmt "%-22s %8d %8d@." "Access gadgets" 15 access;
      Format.fprintf fmt "%-22s %8d %8d@." "Total test cases" 585 total;
      Format.fprintf fmt "@.Test cases per access path:@.";
      List.iter
        (fun (path, n) ->
          Format.fprintf fmt "  %-28s %4d@." (Access_path.to_string path) n)
        (Fuzzer.count_per_path ());
      (match timings with
      | Some (constructor_s, checker_s, per_case_s) ->
        Format.fprintf fmt
          "@.Measured phase timing (paper reports ~1min constructor, ~4min checker, \
           ~5min per case on Verilator RTL simulation; ours is a behavioural \
           simulator, so absolute numbers differ):@.";
        Format.fprintf fmt "  gadget constructor: %.6f s/case@." constructor_s;
        Format.fprintf fmt "  checker:            %.6f s/case@." checker_s;
        Format.fprintf fmt "  full test case:     %.6f s/case@." per_case_s
      | None -> ());
      rule fmt 78)

let verdict_cell ~expected ~found =
  match (expected, found) with
  | true, true -> "X (matches)"
  | false, false -> "- (matches)"
  | true, false -> "MISSING (paper: X)"
  | false, true -> "EXTRA (paper: -)"

let table3 results =
  with_buffer (fun fmt ->
      Format.fprintf fmt "Table 3: leakage cases found, paper vs measured@.";
      rule fmt 110;
      Format.fprintf fmt "%-4s %-62s" "Case" "Description";
      List.iter
        (fun (r : Campaign.result) ->
          Format.fprintf fmt " %-20s"
            (Config.core_kind_to_string r.Campaign.config.Config.kind))
        results;
      Format.fprintf fmt "@.";
      rule fmt 110;
      List.iter
        (fun case ->
          Format.fprintf fmt "%-4s %-62s" (Case.to_string case)
            (Case.description case);
          List.iter
            (fun (r : Campaign.result) ->
              let found =
                List.exists (Case.equal case) r.Campaign.found
              in
              let expected =
                Case.expected case r.Campaign.config.Config.kind
              in
              Format.fprintf fmt " %-20s" (verdict_cell ~expected ~found))
            results;
          Format.fprintf fmt "@.")
        Case.all;
      rule fmt 110;
      List.iter
        (fun (r : Campaign.result) ->
          Format.fprintf fmt
            "%s: %d/%d cases match the paper; %d test cases run; %d residue warnings@."
            (Config.core_kind_to_string r.Campaign.config.Config.kind)
            (List.length Case.all - List.length (Campaign.mismatches r))
            (List.length Case.all) r.Campaign.total_cases r.Campaign.residue_warnings)
        results)

let table4 results =
  with_buffer (fun fmt ->
      Format.fprintf fmt
        "Table 4: mitigation effectiveness (paper expectation / measured per core)@.";
      rule fmt 118;
      Format.fprintf fmt "%-6s" "Case";
      List.iter
        (fun m -> Format.fprintf fmt " %-17s" (Mitigation.to_string m))
        (Mitigation.all @ Mitigation.extensions);
      Format.fprintf fmt "@.";
      rule fmt 118;
      List.iter
        (fun case ->
          Format.fprintf fmt "%-6s" (Case.to_string case);
          List.iter
            (fun mitigation ->
              let paper =
                match Mitigation_eval.paper_expectation ~case ~mitigation with
                | `Effective -> "X"
                | `Ineffective -> "-"
                | `Effective_xs_only -> "X*"
              in
              let measured =
                String.concat "/"
                  (List.map
                     (fun (r : Mitigation_eval.result) ->
                       match Mitigation_eval.effective r ~case ~mitigation with
                       | Some true -> "X"
                       | Some false ->
                         if
                           List.exists (Case.equal case)
                             r.Mitigation_eval.baseline_found
                         then "-"
                         else "."
                       | None -> "?")
                     results)
              in
              Format.fprintf fmt " %-17s" (Printf.sprintf "%s %s" paper measured))
            (Mitigation.all @ Mitigation.extensions);
          Format.fprintf fmt "@.")
        Case.all;
      rule fmt 118;
      Format.fprintf fmt
        "Cell format: <paper> <measured-%s>.  X = mitigated, - = not mitigated, . = \
         case absent at baseline on that core, X* = paper marks it effective only on \
         XiangShan.  tag-bpu-hpc is the tagging countermeasure of the paper's \
         section 8, implemented and evaluated as an extension.@."
        (String.concat "/"
           (List.map
              (fun (r : Mitigation_eval.result) ->
                Config.core_kind_to_string r.Mitigation_eval.config.Config.kind)
              results)))

let table3_csv results =
  let header =
    "case"
    :: List.concat_map
         (fun (r : Campaign.result) ->
           let core = Config.core_kind_to_string r.Campaign.config.Config.kind in
           [ core ^ "_paper"; core ^ "_measured"; core ^ "_testcases" ])
         results
  in
  let rows =
    List.map
      (fun case ->
        Case.to_string case
        :: List.concat_map
             (fun (r : Campaign.result) ->
               let stats = List.assoc case r.Campaign.stats in
               [
                 string_of_bool (Case.expected case r.Campaign.config.Config.kind);
                 string_of_bool stats.Campaign.found;
                 string_of_int stats.Campaign.testcases;
               ])
             results)
      Case.all
  in
  String.concat "\n" (List.map (String.concat ",") (header :: rows)) ^ "\n"

let table4_csv results =
  let mitigations = Mitigation.all @ Mitigation.extensions in
  let header =
    "case" :: "mitigation" :: "paper"
    :: List.map
         (fun (r : Mitigation_eval.result) ->
           Config.core_kind_to_string r.Mitigation_eval.config.Config.kind)
         results
  in
  let rows =
    List.concat_map
      (fun case ->
        List.map
          (fun mitigation ->
            Case.to_string case
            :: Mitigation.to_string mitigation
            :: (match Mitigation_eval.paper_expectation ~case ~mitigation with
               | `Effective -> "effective"
               | `Ineffective -> "ineffective"
               | `Effective_xs_only -> "effective-xs-only")
            :: List.map
                 (fun r ->
                   match Mitigation_eval.effective r ~case ~mitigation with
                   | Some true -> "effective"
                   | Some false -> "ineffective"
                   | None -> "unknown")
                 results)
          mitigations)
      Case.all
  in
  String.concat "\n" (List.map (String.concat ",") (header :: rows)) ^ "\n"
