open! Import

(** Memory access modalities (verification-plan enumeration).

    Thirteen data access paths and two metadata paths, matching the
    paper's gadget inventory (§5: "2 metadata access gadgets and 13 data
    access gadgets, one for each memory access path").  Each path records
    whether it is explicit or implicit, its permission-check policy on
    each core (§4.1.2), and the leakage cases it can surface. *)

type t =
  | Exp_acc_enc_l1  (** Explicit load; secret resident in the L1D. *)
  | Exp_acc_enc_l2  (** Explicit load; secret in the L2 only. *)
  | Exp_acc_enc_mem  (** Explicit load; secret in memory only. *)
  | Exp_acc_enc_stb  (** Explicit load; secret pending in the store buffer. *)
  | Exp_acc_enc_misaligned  (** Misaligned explicit load straddling a boundary. *)
  | Exp_acc_sm  (** Explicit load targeting security-monitor memory. *)
  | Exp_acc_cross_enclave  (** Explicit load from one enclave into another. *)
  | Exp_acc_host_from_enclave  (** Explicit enclave load of host memory. *)
  | Exp_store_enc  (** Explicit host store into enclave memory. *)
  | Imp_acc_pref  (** Implicit next-line prefetcher access. *)
  | Imp_acc_ptw_root  (** Implicit page walk with a hijacked root pointer. *)
  | Imp_acc_ptw_legit  (** Implicit page walk through legitimate tables. *)
  | Imp_acc_destroy_memset  (** Implicit refills of the destroy memset. *)
  | Meta_hpc  (** Metadata: hardware performance counters. *)
  | Meta_btb  (** Metadata: branch-target-buffer collisions. *)

val all : t list
val data_paths : t list
val metadata_paths : t list
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val description : t -> string

type explicitness = Explicit | Implicit

val explicitness : t -> explicitness

(** Permission-check policy of a path on a given core (§4.1.2): checked
    before the access, checked in parallel with it (speculatively
    bypassable), or not checked at all. *)
type perm_policy = Checked_serial | Checked_parallel | Unchecked

val perm_policy_to_string : perm_policy -> string
val perm_policy : t -> Config.core_kind -> perm_policy

(** Leakage cases a finding on this path can be classified as. *)
val candidate_cases : t -> Case.id list

(** Structures this path moves data or metadata through, for the plan's
    cross-reference with the storage-element inventory. *)
val structures : t -> Structure.t list
