open! Import

(** Text rendering of the paper's tables, comparing our measured results
    with the published ones.  Used by the benchmark harness and the
    CLI. *)

(** Table 1: TEESec component automation. *)
val table1 : unit -> string

(** Table 2: gadget inventory, corpus size and per-phase timing.
    [timings] supplies measured seconds per phase as
    [(constructor, checker, avg_testcase)]. *)
val table2 : ?timings:float * float * float -> unit -> string

(** Table 3: leakage cases per core, paper vs measured. *)
val table3 : Campaign.result list -> string

(** Table 4: mitigation effectiveness per core, paper vs measured. *)
val table4 : Mitigation_eval.result list -> string

(** Machine-readable exports for downstream analysis: one row per
    leakage case. *)
val table3_csv : Campaign.result list -> string

val table4_csv : Mitigation_eval.result list -> string
