open! Import

(** One-shot verification report.

    Drives the whole pipeline for a set of cores — campaign, mitigation
    matrix, coverage, recommendations, figure scenarios — and renders a
    single markdown document, the deliverable a verification engineer
    would hand to the design team. *)

type options = {
  full_corpus : bool;  (** 585-case corpus vs the representative slice. *)
  include_scenarios : bool;
  include_recommendations : bool;
}

val default_options : options

(** [generate ?options configs] runs everything and renders markdown. *)
val generate : ?options:options -> Config.t list -> string

(** [save ?options ~path configs] writes the report to a file and
    returns its size in bytes. *)
val save : ?options:options -> path:string -> Config.t list -> int
