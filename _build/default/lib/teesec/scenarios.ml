open! Import

type trace = {
  title : string;
  lines : string list;
  observations : (string * string) list;
}

let pp_trace fmt t =
  Format.fprintf fmt "--- %s ---@." t.title;
  List.iter (fun l -> Format.fprintf fmt "  %s@." l) t.lines;
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-46s %s@." (k ^ ":") v) t.observations

let record_to_string r = Format.asprintf "%a" Log.pp_record r

(* Keep the log lines that mention one of the given structures as Write
   events — the "interesting" excerpt of a figure's trace. *)
let excerpt log structures =
  List.filter_map
    (fun (r : Log.record) ->
      match r.Log.event with
      | Log.Write { structure; _ }
        when List.exists (Structure.equal structure) structures ->
        Some (record_to_string r)
      | Log.Exception_raised _ -> Some (record_to_string r)
      | _ -> None)
    (Log.to_list log)

let run_path config path ~params =
  let tc = Assembler.assemble ~id:0 path ~params in
  let outcome = Runner.run config tc in
  let findings = Checker.check outcome.Runner.log outcome.Runner.tracker in
  (outcome, findings)

let cases_str findings =
  match Checker.distinct_cases findings with
  | [] -> "none"
  | cases -> String.concat "," (List.map Case.to_string cases)

let core_name (config : Config.t) = Config.core_kind_to_string config.Config.kind

let prefetcher config =
  let params = Params.make ~offset:56 ~width:8 ~variant:0 () in
  let outcome, findings = run_path config Access_path.Imp_acc_pref ~params in
  let secret_in_lfb =
    List.exists
      (fun (f : Checker.finding) -> f.Checker.case = Some Case.D1)
      findings
  in
  {
    title =
      Printf.sprintf
        "Figure 2: boundary-straddling host load abusing the next-line prefetcher (%s)"
        (core_name config);
    lines = excerpt outcome.Runner.log [ Structure.Prefetcher; Structure.Lfb ];
    observations =
      [
        ("host access", "last accessible line before the enclave region");
        ( "prefetcher present",
          string_of_bool config.Config.has_l1_prefetcher );
        ("enclave line pulled into LFB (D1)", string_of_bool secret_in_lfb);
        ("cases found", cases_str findings);
      ];
  }

let ptw config =
  let params = Params.make ~offset:0 ~width:8 ~variant:0 () in
  let outcome, findings = run_path config Access_path.Imp_acc_ptw_root ~params in
  let d2 =
    List.exists (fun (f : Checker.finding) -> f.Checker.case = Some Case.D2) findings
  in
  {
    title =
      Printf.sprintf
        "Figure 3: satp hijacked into enclave memory, TLB-missing load forces a walk (%s)"
        (core_name config);
    lines = excerpt outcome.Runner.log [ Structure.Lfb; Structure.Ptw_cache ];
    observations =
      [
        ( "PTW PMP pre-check",
          if config.Config.ptw_pmp_precheck then "before request (no request issued)"
          else "after access (request already sent)" );
        ("enclave line filled into LFB (D2)", string_of_bool d2);
        ("cases found", cases_str findings);
      ];
  }

let destroy_residue config =
  let params = Params.make ~offset:0 ~width:8 ~variant:0 () in
  let outcome, findings =
    run_path config Access_path.Imp_acc_destroy_memset ~params
  in
  let d3 =
    List.exists (fun (f : Checker.finding) -> f.Checker.case = Some Case.D3) findings
  in
  {
    title =
      Printf.sprintf
        "Figure 4: sm_destroy_enclave memset drags dying secrets through the LFB (%s)"
        (core_name config);
    lines = excerpt outcome.Runner.log [ Structure.Lfb ];
    observations =
      [
        ( "LFB retains completed fills",
          string_of_bool config.Config.lfb_retains_stale );
        ("secrets persist in LFB after switch (D3)", string_of_bool d3);
        ("cases found", cases_str findings);
      ];
  }

(* Figure 5 is driven by hand: one faulting load with the secret hot in
   the L1D, one with it evicted. *)
let xs_fake_hit config =
  let measure ~in_l1 =
    let env = Env.create config Params.default in
    Gadget_library.create_enclave.Gadget.emit env;
    Gadget_library.fill_enc_mem.Gadget.emit env;
    if not in_l1 then begin
      Gadget_library.evict_enc_l1.Gadget.emit env;
      Gadget_library.evict_enc_l2.Gadget.emit env
    end;
    Machine.switch_context env.Env.machine
      ~to_ctx:(Exec_context.Host Priv.Supervisor);
    let r = Machine.load env.Env.machine ~vaddr:(Env.secret_addr env) ~size:8 () in
    (r, env)
  in
  let hit, env_hit = measure ~in_l1:true in
  let miss, _env_miss = measure ~in_l1:false in
  let secret = Secret.value_for ~seed:Params.default.Params.seed ~addr:(Env.secret_addr env_hit) in
  {
    title =
      Printf.sprintf "Figure 5: faulting-load response, secret in vs not in L1D (%s)"
        (core_name config);
    lines = [];
    observations =
      [
        ("hit response latency (cycles)", string_of_int hit.Machine.latency);
        ( "hit response data",
          if Int64.equal hit.Machine.value secret then "verbatim secret"
          else Word.to_hex hit.Machine.value );
        ("hit forwarded transiently", string_of_bool hit.Machine.transient_forward);
        ("miss response latency (cycles)", string_of_int miss.Machine.latency);
        ( "miss response data",
          if not (Int64.equal miss.Machine.value 0L) then Word.to_hex miss.Machine.value
          else if config.Config.faulting_miss_fake_hit then "zero (fake hit)"
          else "zero (no forward; line filled into LFB instead)" );
        ( "miss fills LFB",
          string_of_bool (not config.Config.faulting_miss_fake_hit) );
      ];
  }

let hpc_interrupt config =
  let env = Env.create config Params.default in
  let m = env.Env.machine in
  let marker = 0x1234_CAFE_F00DL in
  Csr.raw_write (Machine.csr m) (Csr.Mhpmcounter 4) marker;
  Security_monitor.arm_external_interrupt env.Env.sm;
  let prog =
    Program.of_instrs ~base:Memory_layout.host_code_base
      [ Instr.Csrr (Instr.a5, Csr.Mhpmcounter 4); Instr.Halt ]
  in
  ignore (Security_monitor.run_host env.Env.sm prog);
  (* The interrupt service routine spills x1..x31; with a 16-entry buffer
     the early registers may already have drained into the L1D, so check
     both the buffer and the logged context-save stores. *)
  let spilled =
    Machine.store_buffer_holds m marker
    || List.exists
         (fun (r : Log.record) ->
           match r.Log.event with
           | Log.Write { structure = Structure.Store_buffer; entries; origin = Log.Context_save } ->
             List.exists (fun (e : Log.entry) -> Int64.equal e.Log.data marker) entries
           | _ -> false)
         (Log.to_list (Machine.log m))
  in
  let arch_leak = not (Int64.equal (Machine.get_reg m Instr.a5) 0L) in
  {
    title =
      Printf.sprintf
        "Figure 6: privileged counter read + interrupt in the transient window (%s)"
        (core_name config);
    lines = excerpt (Machine.log m) [ Structure.Reg_file; Structure.Store_buffer ];
    observations =
      [
        ("CSR privilege check", if config.Config.lazy_csr_priv_check then "lazy" else "early");
        ("architectural register leaked", string_of_bool arch_leak);
        ("counter value spilled to store buffer", string_of_bool spilled);
      ];
  }

let btb_alias config =
  let probe_delta ~enclave_taken =
    let variant = if enclave_taken then 0 else 4 in
    let params = Params.make ~variant () in
    let tc = Assembler.assemble ~id:0 Access_path.Meta_btb ~params in
    let outcome = Runner.run config tc in
    let findings = Checker.check outcome.Runner.log outcome.Runner.tracker in
    let delta = Machine.get_reg outcome.Runner.env.Env.machine Instr.a4 in
    (delta, findings, outcome)
  in
  let delta_taken, findings_taken, outcome = probe_delta ~enclave_taken:true in
  let delta_not_taken, _, _ = probe_delta ~enclave_taken:false in
  let m = outcome.Runner.env.Env.machine in
  let index = Gadget_library.btb_branch_index ~variant:0 in
  let host_pc = Int64.add Memory_layout.host_code_base (Int64.of_int (4 * index)) in
  let enclave_pc =
    Int64.add (Memory_layout.enclave_code_base 0) (Int64.of_int (4 * index))
  in
  let ubtb = Machine.ubtb m in
  {
    title =
      Printf.sprintf "Figure 7: host and enclave branches alias in the uBTB (%s)"
        (core_name config);
    lines = [];
    observations =
      [
        ("host branch PC", Word.to_hex host_pc);
        ("enclave branch PC", Word.to_hex enclave_pc);
        ( "uBTB set index (host / enclave)",
          Printf.sprintf "%d / %d"
            (Btb.index_of ubtb ~pc:host_pc)
            (Btb.index_of ubtb ~pc:enclave_pc) );
        ( "uBTB partial tag (host / enclave)",
          Printf.sprintf "%s / %s"
            (Word.to_hex (Btb.tag_of ubtb ~pc:host_pc))
            (Word.to_hex (Btb.tag_of ubtb ~pc:enclave_pc)) );
        ("PCs alias", string_of_bool (Btb.aliases ubtb ~pc1:host_pc ~pc2:enclave_pc));
        ( "probe cycles (enclave taken / not taken)",
          Printf.sprintf "%Ld / %Ld" delta_taken delta_not_taken );
        ( "outcome distinguishable",
          string_of_bool (not (Int64.equal delta_taken delta_not_taken)) );
        ("cases found", cases_str findings_taken);
      ];
  }

let btb_tag_sweep config ~tag_bits =
  List.map
    (fun bits ->
      let cfg = { config with Config.ubtb_tag_bits = bits; ftb_tag_bits = bits } in
      let probe ~enclave_taken =
        let variant = if enclave_taken then 0 else 4 in
        let tc = Assembler.assemble ~id:0 Access_path.Meta_btb ~params:(Params.make ~variant ()) in
        let outcome = Runner.run cfg tc in
        Machine.get_reg outcome.Runner.env.Env.machine Instr.a4
      in
      let delta_taken = probe ~enclave_taken:true in
      let delta_not = probe ~enclave_taken:false in
      let m = Machine.create cfg in
      let index = Gadget_library.btb_branch_index ~variant:0 in
      let host_pc = Int64.add Memory_layout.host_code_base (Int64.of_int (4 * index)) in
      let enclave_pc =
        Int64.add (Memory_layout.enclave_code_base 0) (Int64.of_int (4 * index))
      in
      ( bits,
        Btb.aliases (Machine.ubtb m) ~pc1:host_pc ~pc2:enclave_pc,
        not (Int64.equal delta_taken delta_not) ))
    tag_bits

let all config =
  [
    ("figure2", prefetcher config);
    ("figure3", ptw config);
    ("figure4", destroy_residue config);
    ("figure5", xs_fake_hit config);
    ("figure6", hpc_interrupt config);
    ("figure7", btb_alias config);
  ]
