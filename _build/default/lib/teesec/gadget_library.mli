open! Import

(** The gadget inventory.

    Matches the paper's prototype (§5): 8 setup gadgets, 12 helper
    gadgets and 15 access gadgets (13 data paths + 2 metadata paths).
    Setup gadgets drive the TEE API; helper gadgets seed secrets and
    establish microarchitectural preconditions; each access gadget
    exercises exactly one {!Access_path}. *)

(** {1 Setup gadgets} *)

val create_enclave : Gadget.t
val create_attacker_enclave : Gadget.t
val exe_enclave : Gadget.t
val stop_enclave : Gadget.t
val resume_enclave : Gadget.t
val exit_enclave : Gadget.t
val destroy_enclave : Gadget.t
val attest_enclave : Gadget.t

(** {1 Helper gadgets} *)

val fill_enc_mem : Gadget.t
val fill_enc_mem_nodrain : Gadget.t
val enc_secret_to_l1 : Gadget.t
val evict_enc_l1 : Gadget.t
val evict_enc_l2 : Gadget.t
val seed_sm_secret : Gadget.t
val touch_sm_secret : Gadget.t
val seed_host_secret : Gadget.t
val build_host_page_tables : Gadget.t
val prime_hpcs : Gadget.t
val prime_ubtb : Gadget.t
val enclave_branch_workload : Gadget.t

(** {1 Access gadgets} *)

(** [access_gadget path] is the gadget exercising [path]. *)
val access_gadget : Access_path.t -> Gadget.t

val setup_gadgets : Gadget.t list
val helper_gadgets : Gadget.t list
val access_gadgets : Gadget.t list
val all : Gadget.t list
val find : string -> Gadget.t option

(** {1 Shared construction details (used by scenarios and tests)} *)

(** The instruction index at which the aliasing branch sits in the prime,
    probe and enclave-workload programs of the M2 gadget family, as a
    function of the variant parameter. *)
val btb_branch_index : variant:int -> int

(** Virtual address used by the PTW gadgets ([vpn2] selects which word of
    the hijacked root-table line the walk reads). *)
val ptw_probe_vaddr : vpn2:int -> Word.t
