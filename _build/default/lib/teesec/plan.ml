open! Import

type storage_entry = {
  structure : Structure.t option;
  element : Netlist.Memory_pass.element;
}

type path_entry = {
  path : Access_path.t;
  policy : Access_path.perm_policy;
  cases : Case.id list;
}

type t = {
  core : Config.t;
  design : Netlist.Design.t;
  storage : storage_entry list;
  paths : path_entry list;
  tee_api : Sbi.call list;
}

let design_of_core (config : Config.t) =
  match config.Config.kind with
  | Config.Boom -> Netlist.Designs.boom
  | Config.Xiangshan -> Netlist.Designs.xiangshan

let structure_of_element (e : Netlist.Memory_pass.element) =
  let matches structure =
    List.exists
      (fun hint ->
        let contains hay =
          let n = String.length hint and m = String.length hay in
          let rec at i = i + n <= m && (String.sub hay i n = hint || at (i + 1)) in
          n > 0 && at 0
        in
        contains e.Netlist.Memory_pass.path
        || contains (Netlist.Cell.name e.Netlist.Memory_pass.cell))
      (Structure.netlist_hint structure)
  in
  List.find_opt matches Structure.all

let build config =
  let design = design_of_core config in
  let storage =
    List.map
      (fun element -> { structure = structure_of_element element; element })
      (Netlist.Memory_pass.run design)
  in
  let paths =
    List.map
      (fun path ->
        {
          path;
          policy = Access_path.perm_policy path config.Config.kind;
          cases = Access_path.candidate_cases path;
        })
      Access_path.all
  in
  { core = config; design; storage; paths; tee_api = Sbi.all }

let storage_element_count t = List.length t.storage
let total_state_bits t = Netlist.Memory_pass.total_bits t.design

let elements_for t structure =
  List.filter_map
    (fun s ->
      match s.structure with
      | Some st when Structure.equal st structure -> Some s.element
      | _ -> None)
    t.storage

type automation = Automatic | Automatable_manual | Manual

let automation_to_string = function
  | Automatic -> "automatic"
  | Automatable_manual -> "automatable (manual pass)"
  | Manual -> "manual"

(* Table 1 of the paper. *)
let automation_table =
  [
    ("Verification Plan", "Identifying Storage Elements", Automatic);
    ("Verification Plan", "Listing Memory Access Paths", Automatable_manual);
    ("Verification Plan", "Listing TEE HW/SW APIs", Automatable_manual);
    ( "Test Gadget Constructor",
      "Access Gadgets Targeting Memory Access Paths",
      Manual );
    ("Test Gadget Constructor", "Test Case Assembly", Automatic);
    ("TEESec Checker", "RTL Simulation Log Analysis", Automatic);
    ("TEESec Checker", "Leakage Discovery", Automatic);
  ]

let pp fmt t =
  Format.fprintf fmt "Verification plan for %s@." t.core.Config.name;
  Format.fprintf fmt "  storage elements: %d (%d state bits)@."
    (storage_element_count t) (total_state_bits t);
  List.iter
    (fun s ->
      Format.fprintf fmt "    %a%s@." Netlist.Memory_pass.pp_element s.element
        (match s.structure with
        | Some st -> " -> logged as " ^ Structure.to_string st
        | None -> ""))
    t.storage;
  Format.fprintf fmt "  memory access paths: %d@." (List.length t.paths);
  List.iter
    (fun p ->
      Format.fprintf fmt "    %-28s %-18s cases: %s@."
        (Access_path.to_string p.path)
        (Access_path.perm_policy_to_string p.policy)
        (String.concat "," (List.map Case.to_string p.cases)))
    t.paths;
  Format.fprintf fmt "  TEE API: %s@."
    (String.concat ", " (List.map Sbi.to_string t.tee_api))
