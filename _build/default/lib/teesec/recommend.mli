open! Import

(** Mitigation recommendation (extension).

    The paper's §8 discusses countermeasures qualitatively and notes that
    "not all mitigations need to be deployed in all systems depending on
    threat models".  This module makes that trade-off concrete: it
    evaluates combinations of countermeasures against the measured
    campaign and the measured overhead, and ranks them — fewest residual
    leakage cases first, cheapest second.

    A structural consequence the paper also reaches shows up immediately:
    on BOOM no combination of the evaluated knobs closes D1, because the
    unchecked prefetcher path cannot be flushed away — it needs a
    hardware change (a PMP check on prefetch requests). *)

type recommendation = {
  mitigations : Mitigation.t list;
  closes : Case.id list;  (** Baseline cases this set eliminates. *)
  residual : Case.id list;  (** Cases still found under the set. *)
  overhead_pct : float;  (** Measured on the mixed reference workload. *)
}

type result = {
  config : Config.t;
  baseline : Case.id list;
  ranked : recommendation list;  (** Best first. *)
}

(** [candidate_sets ~max_size] is every combination of up to [max_size]
    mitigations (flush-everything subsumes its components and is offered
    alone). *)
val candidate_sets : max_size:int -> Mitigation.t list list

(** [evaluate ?max_size config] measures every candidate set.  The
    default [max_size] is 3. *)
val evaluate : ?max_size:int -> Config.t -> result

(** [best result] is the top-ranked recommendation. *)
val best : result -> recommendation

val pp_result : Format.formatter -> result -> unit
