open! Import

type recommendation = {
  mitigations : Mitigation.t list;
  closes : Case.id list;
  residual : Case.id list;
  overhead_pct : float;
}

type result = {
  config : Config.t;
  baseline : Case.id list;
  ranked : recommendation list;
}

(* Flush-everything subsumes the individual flushes, so combining it
   with them is pointless; offer it only alone or with the datapath
   change. *)
let atoms =
  [
    Mitigation.Flush_l1d;
    Mitigation.Flush_store_buffer;
    Mitigation.Clear_illegal_data_returns;
    Mitigation.Flush_lfb;
    Mitigation.Flush_bpu_hpc;
    Mitigation.Tag_bpu_hpc;
  ]

let rec combinations k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
    List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest

let candidate_sets ~max_size =
  let sized =
    List.concat_map
      (fun k -> combinations k atoms)
      (List.init max_size (fun i -> i + 1))
  in
  ([] :: sized)
  @ [
      [ Mitigation.Flush_everything ];
      [ Mitigation.Flush_everything; Mitigation.Clear_illegal_data_returns ];
    ]

let evaluate ?(max_size = 3) config =
  let slice = Mitigation_eval.slice () in
  let found_under mitigations =
    (Campaign.run (Config.with_mitigations config mitigations) slice).Campaign.found
  in
  let baseline = found_under [] in
  let baseline_cycles, _ =
    Overhead.workload_cycles config ~workload:Overhead.Mixed ~rounds:8
  in
  let measure mitigations =
    let found = found_under mitigations in
    let residual = List.filter (fun c -> List.exists (Case.equal c) found) baseline in
    let closes =
      List.filter (fun c -> not (List.exists (Case.equal c) found)) baseline
    in
    let cycles, _ =
      Overhead.workload_cycles
        (Config.with_mitigations config mitigations)
        ~workload:Overhead.Mixed ~rounds:8
    in
    {
      mitigations;
      closes;
      residual;
      overhead_pct =
        (if baseline_cycles = 0 then 0.0
         else
           100.0
           *. (float_of_int cycles -. float_of_int baseline_cycles)
           /. float_of_int baseline_cycles);
    }
  in
  let ranked =
    List.stable_sort
      (fun a b ->
        match Int.compare (List.length a.residual) (List.length b.residual) with
        | 0 -> (
          match Float.compare a.overhead_pct b.overhead_pct with
          | 0 -> Int.compare (List.length a.mitigations) (List.length b.mitigations)
          | c -> c)
        | c -> c)
      (List.map measure (candidate_sets ~max_size))
  in
  { config; baseline; ranked }

let best result =
  match result.ranked with
  | r :: _ -> r
  | [] -> invalid_arg "Recommend.best: no candidates"

let pp_recommendation fmt r =
  Format.fprintf fmt "%-55s residual: %-12s overhead: %+6.1f%%"
    (if r.mitigations = [] then "(none)"
     else String.concat " + " (List.map Mitigation.to_string r.mitigations))
    (if r.residual = [] then "none"
     else String.concat "," (List.map Case.to_string r.residual))
    r.overhead_pct

let pp_result fmt result =
  Format.fprintf fmt "Mitigation recommendations for %s (baseline finds %s):@."
    result.config.Config.name
    (String.concat "," (List.map Case.to_string result.baseline));
  List.iteri
    (fun i r -> if i < 8 then Format.fprintf fmt "  %d. %a@." (i + 1) pp_recommendation r)
    result.ranked
