(** Structural descriptions of the two evaluated cores.

    These netlists carry the module hierarchy and the storage elements of
    a BOOM-style (SonicBOOM) and a XiangShan-style out-of-order core, at
    the granularity the TEESec verification plan needs: one memory cell
    per microarchitectural structure that can hold enclave data or
    metadata.  Sizes follow the published configurations (SmallBoomConfig
    and XiangShan MinimalConfig, as used in the paper's artifact). *)

val boom : Design.t
val xiangshan : Design.t

(** [of_core_name name] maps ["boom"] / ["xiangshan"] to the design. *)
val of_core_name : string -> Design.t option
