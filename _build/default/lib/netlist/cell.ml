type t =
  | Register of { name : string; width : int }
  | Memory of { name : string; width : int; depth : int }
  | Logic of { name : string }

let name = function
  | Register { name; _ } | Memory { name; _ } | Logic { name } -> name

let state_bits = function
  | Register { width; _ } -> width
  | Memory { width; depth; _ } -> width * depth
  | Logic _ -> 0

let is_storage t = state_bits t > 0

let pp fmt = function
  | Register { name; width } -> Format.fprintf fmt "reg %s[%d]" name width
  | Memory { name; width; depth } ->
    Format.fprintf fmt "mem %s[%dx%d]" name depth width
  | Logic { name } -> Format.fprintf fmt "logic %s" name
