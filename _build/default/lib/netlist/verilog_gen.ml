let storage_marker = "// teesec: log"

let cell_to_string cell =
  match (cell : Cell.t) with
  | Cell.Register { name; width } ->
    Printf.sprintf "  reg [%d:0] %s;  %s" (width - 1) name storage_marker
  | Cell.Memory { name; width; depth } ->
    Printf.sprintf "  reg [%d:0] %s [0:%d];  %s" (width - 1) name (depth - 1)
      storage_marker
  | Cell.Logic { name } -> Printf.sprintf "  /* combinational: %s */" name

let instance_to_string (instance_name, module_name) =
  Printf.sprintf "  %s %s (.clock(clock), .reset(reset));" module_name instance_name

let module_to_string (m : Design.hw_module) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "module %s(\n" m.Design.module_name);
  Buffer.add_string buf "  input clock,\n  input reset\n);\n";
  List.iter
    (fun cell ->
      Buffer.add_string buf (cell_to_string cell);
      Buffer.add_char buf '\n')
    m.Design.cells;
  List.iter
    (fun inst ->
      Buffer.add_string buf (instance_to_string inst);
      Buffer.add_char buf '\n')
    m.Design.instances;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let design_to_string d =
  (* Top first, then every other module in a stable order, each once. *)
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  Design.iter_instances d (fun ~path:_ ~hw_module ->
      if not (Hashtbl.mem seen hw_module.Design.module_name) then begin
        Hashtbl.replace seen hw_module.Design.module_name ();
        order := hw_module :: !order
      end);
  String.concat "\n" (List.rev_map module_to_string !order)
