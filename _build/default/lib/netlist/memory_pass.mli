(** Storage-element discovery pass.

    Walks a {!Design} hierarchy and emits a record for every cell that
    holds state — the equivalent of running the Yosys memory-mapping pass
    over the RTL, which is how TEESec compiles the list of
    microarchitectural structures whose contents the checker must log. *)

type element = {
  path : string;  (** Full instance path, e.g. ["boom.lsu.lfb"]. *)
  cell : Cell.t;
  bits : int;  (** Total state bits. *)
}

(** [run design] lists every storage element in hierarchy order. *)
val run : Design.t -> element list

(** [total_bits design] sums the state bits of the whole design. *)
val total_bits : Design.t -> int

(** [find design ~substring] keeps the elements whose path or cell name
    contains [substring] (case-sensitive); used to hook plan entries to
    logged structures. *)
val find : Design.t -> substring:string -> element list

val pp_element : Format.formatter -> element -> unit
