type hw_module = {
  module_name : string;
  cells : Cell.t list;
  instances : (string * string) list;
}

type t = { top : string; modules : (string, hw_module) Hashtbl.t }

let create ~top modules =
  let table = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if Hashtbl.mem table m.module_name then
        invalid_arg
          (Printf.sprintf "Design.create: duplicate module %s" m.module_name);
      Hashtbl.replace table m.module_name m)
    modules;
  let find name =
    match Hashtbl.find_opt table name with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Design.create: missing module %s" name)
  in
  (* Check hierarchy: every instance resolves and there is no cycle. *)
  let rec check trail name =
    if List.mem name trail then
      invalid_arg (Printf.sprintf "Design.create: cyclic hierarchy at %s" name);
    let m = find name in
    List.iter (fun (_, sub) -> check (name :: trail) sub) m.instances
  in
  check [] top;
  { top; modules = table }

let top t = Hashtbl.find t.modules t.top
let find_module t name = Hashtbl.find_opt t.modules name
let module_count t = Hashtbl.length t.modules

let iter_instances t f =
  let rec go path m =
    f ~path ~hw_module:m;
    List.iter
      (fun (inst, sub) ->
        go (path ^ "." ^ inst) (Hashtbl.find t.modules sub))
      m.instances
  in
  go t.top (top t)
