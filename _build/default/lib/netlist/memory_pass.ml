type element = { path : string; cell : Cell.t; bits : int }

let run design =
  let acc = ref [] in
  Design.iter_instances design (fun ~path ~hw_module ->
      List.iter
        (fun cell ->
          if Cell.is_storage cell then
            acc := { path; cell; bits = Cell.state_bits cell } :: !acc)
        hw_module.Design.cells);
  List.rev !acc

let total_bits design = List.fold_left (fun n e -> n + e.bits) 0 (run design)

let contains_substring ~substring s =
  let n = String.length substring and m = String.length s in
  if n = 0 then true
  else
    let rec at i = i + n <= m && (String.sub s i n = substring || at (i + 1)) in
    at 0

let find design ~substring =
  List.filter
    (fun e ->
      contains_substring ~substring e.path
      || contains_substring ~substring (Cell.name e.cell))
    (run design)

let pp_element fmt e =
  Format.fprintf fmt "%s.%a (%d bits)" e.path Cell.pp e.cell e.bits
