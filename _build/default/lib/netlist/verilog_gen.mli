(** Verilog skeleton emission.

    In the real TEESec flow the verification plan's storage elements are
    located in the Verilog the Chisel designs elaborate to, and the
    logging instrumentation is spliced in next to them.  This module
    emits that view of our structural designs: one synthesizable-style
    module skeleton per {!Design.hw_module}, with memories as
    two-dimensional [reg] arrays, registers as [reg] vectors, and child
    instances wired to clock/reset.  Each storage cell is annotated with
    the [// teesec: log] marker the instrumentation pass would target. *)

(** [module_to_string m] renders one module skeleton. *)
val module_to_string : Design.hw_module -> string

(** [design_to_string d] renders every module of the design, the top
    module first. *)
val design_to_string : Design.t -> string

(** [storage_marker] is the comment the instrumentation pass looks
    for. *)
val storage_marker : string
