(** Structural netlist cells.

    A deliberately small model of the design representation the Yosys
    memory-mapping pass operates on: each hardware module is a bag of
    cells, and the pass of {!Memory_pass} collects every cell that maps to
    a memory object.  This reproduces the automatic
    "Identifying Storage Elements" step of the paper's verification plan
    (Table 1). *)

type t =
  | Register of { name : string; width : int }
      (** A single flip-flop vector. *)
  | Memory of { name : string; width : int; depth : int }
      (** An addressable array: [depth] entries of [width] bits. *)
  | Logic of { name : string }
      (** Combinational logic; carries no state. *)

val name : t -> string

(** [state_bits cell] is the number of state bits the cell holds (zero
    for combinational logic). *)
val state_bits : t -> int

val is_storage : t -> bool
val pp : Format.formatter -> t -> unit
