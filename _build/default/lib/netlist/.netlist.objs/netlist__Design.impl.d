lib/netlist/design.ml: Cell Hashtbl List Printf
