lib/netlist/designs.ml: Cell Design
