lib/netlist/designs.mli: Design
