lib/netlist/verilog_gen.ml: Buffer Cell Design Hashtbl List Printf String
