lib/netlist/cell.mli: Format
