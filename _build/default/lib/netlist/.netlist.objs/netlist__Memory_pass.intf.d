lib/netlist/memory_pass.mli: Cell Design Format
