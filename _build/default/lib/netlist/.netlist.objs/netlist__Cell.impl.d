lib/netlist/cell.ml: Format
