lib/netlist/memory_pass.ml: Cell Design Format List String
