lib/netlist/design.mli: Cell
