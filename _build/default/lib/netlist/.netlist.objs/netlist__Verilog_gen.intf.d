lib/netlist/verilog_gen.mli: Design
