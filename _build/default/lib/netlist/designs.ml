let reg name width = Cell.Register { name; width }
let mem name ~width ~depth = Cell.Memory { name; width; depth }
let logic name = Cell.Logic { name }

(* Line size is 512 bits throughout, matching both cores. *)
let line_bits = 512

let boom =
  Design.create ~top:"boom"
    [
      {
        module_name = "boom";
        cells = [ logic "tile" ];
        instances =
          [
            ("frontend", "boom_frontend");
            ("backend", "boom_backend");
            ("lsu", "boom_lsu");
            ("ptw", "boom_ptw");
            ("csr", "boom_csr");
          ];
      };
      {
        module_name = "boom_frontend";
        cells =
          [
            mem "icache_data" ~width:line_bits ~depth:64;
            mem "icache_meta" ~width:20 ~depth:64;
            mem "fetch_buffer" ~width:32 ~depth:8;
            mem "btb" ~width:60 ~depth:128;
            mem "bim" ~width:2 ~depth:512;
            mem "ras" ~width:40 ~depth:8;
            reg "fetch_pc" 40;
          ];
        instances = [];
      };
      {
        module_name = "boom_backend";
        cells =
          [
            mem "rob" ~width:70 ~depth:32;
            mem "int_regfile" ~width:64 ~depth:100;
            mem "rename_maptable" ~width:7 ~depth:32;
            mem "issue_queue" ~width:80 ~depth:16;
            logic "alu";
          ];
        instances = [];
      };
      {
        module_name = "boom_lsu";
        cells =
          [
            mem "load_queue" ~width:80 ~depth:8;
            mem "store_queue" ~width:140 ~depth:8;
            mem "dtlb" ~width:70 ~depth:32;
          ];
        instances = [ ("dcache", "boom_dcache") ];
      };
      {
        module_name = "boom_dcache";
        cells =
          [
            mem "data_array" ~width:line_bits ~depth:64;
            mem "meta_array" ~width:22 ~depth:64;
            mem "lfb" ~width:line_bits ~depth:4;
              (* Line-fill buffer / MSHR data: the structure behind D1-D3. *)
            mem "mshr_meta" ~width:50 ~depth:4;
            mem "wb_buffer" ~width:line_bits ~depth:2;
            reg "prefetcher_next_line" 40;
          ];
        instances = [];
      };
      {
        module_name = "boom_ptw";
        cells =
          [ mem "ptw_cache" ~width:64 ~depth:8; reg "ptw_state" 4 ];
        instances = [];
      };
      {
        module_name = "boom_csr";
        cells =
          [
            mem "hpm_counters" ~width:64 ~depth:8;
            mem "pmp_cfg" ~width:8 ~depth:16;
            mem "pmp_addr" ~width:54 ~depth:16;
            reg "satp" 64;
          ];
        instances = [];
      };
    ]

let xiangshan =
  Design.create ~top:"xiangshan"
    [
      {
        module_name = "xiangshan";
        cells = [ logic "tile" ];
        instances =
          [
            ("frontend", "xs_frontend");
            ("backend", "xs_backend");
            ("memblock", "xs_memblock");
            ("ptw", "xs_ptw");
            ("csr", "xs_csr");
          ];
      };
      {
        module_name = "xs_frontend";
        cells =
          [
            mem "icache_data" ~width:line_bits ~depth:128;
            mem "icache_meta" ~width:20 ~depth:128;
            mem "ubtb" ~width:60 ~depth:1024;
              (* Direct-mapped micro BTB; partial tags make it the M2 target. *)
            mem "ftb" ~width:100 ~depth:4096;
            mem "tage_tables" ~width:12 ~depth:2048;
            mem "ras" ~width:40 ~depth:16;
          ];
        instances = [];
      };
      {
        module_name = "xs_backend";
        cells =
          [
            mem "rob" ~width:70 ~depth:48;
            mem "int_regfile" ~width:64 ~depth:128;
            mem "rename_table" ~width:7 ~depth:32;
            mem "issue_queue" ~width:80 ~depth:24;
            logic "exu";
          ];
        instances = [];
      };
      {
        module_name = "xs_memblock";
        cells =
          [
            mem "load_queue" ~width:80 ~depth:16;
            mem "store_queue" ~width:140 ~depth:12;
            mem "sbuffer" ~width:line_bits ~depth:16;
              (* Committed-store buffer: the structure behind D8 and M1. *)
            mem "dtlb" ~width:70 ~depth:32;
          ];
        instances = [ ("dcache", "xs_dcache") ];
      };
      {
        module_name = "xs_dcache";
        cells =
          [
            mem "data_array" ~width:line_bits ~depth:128;
            mem "meta_array" ~width:22 ~depth:128;
            mem "miss_queue" ~width:line_bits ~depth:8;
            mem "wb_queue" ~width:line_bits ~depth:4;
          ];
        instances = [];
      };
      {
        module_name = "xs_ptw";
        cells =
          [
            mem "ptw_cache_l1" ~width:64 ~depth:16;
            mem "ptw_cache_l2" ~width:64 ~depth:32;
            reg "ptw_state" 4;
          ];
        instances = [];
      };
      {
        module_name = "xs_csr";
        cells =
          [
            mem "hpm_counters" ~width:64 ~depth:8;
            mem "pmp_cfg" ~width:8 ~depth:16;
            mem "pmp_addr" ~width:54 ~depth:16;
            reg "satp" 64;
          ];
        instances = [];
      };
    ]

let of_core_name = function
  | "boom" -> Some boom
  | "xiangshan" -> Some xiangshan
  | _ -> None
