(** Hierarchical hardware designs.

    A design is a table of modules plus a distinguished top module; each
    module contains cells and named instances of other modules.  The
    hierarchy exists so that the memory pass can report storage elements
    with their full instance path (e.g. [core.lsu.lfb.data]), which is how
    the verification plan refers to them and how the simulation log is
    keyed. *)

type hw_module = {
  module_name : string;
  cells : Cell.t list;
  instances : (string * string) list;
      (** [(instance_name, module_name)] pairs. *)
}

type t

(** [create ~top modules] builds a design.  Raises [Invalid_argument] if
    [top] or any instantiated module is missing, a module is defined
    twice, or the hierarchy is cyclic. *)
val create : top:string -> hw_module list -> t

val top : t -> hw_module
val find_module : t -> string -> hw_module option
val module_count : t -> int

(** [iter_instances t f] calls [f ~path ~hw_module] for every instance in
    the hierarchy, with [path] the dot-separated instance path from the
    top module (the top itself has its module name as path). *)
val iter_instances : t -> (path:string -> hw_module:hw_module -> unit) -> unit
