open Import

(** Hardware performance counter events.

    Both cores expose event counters through the [mhpmcounter] CSRs; this
    module maps microarchitectural events to counter indices and bumps
    them in the CSR file.  Neither core resets the counters on a context
    switch and Keystone provides no software mechanism to clear them —
    the root cause of leakage case M1: the host primes the counters,
    runs the enclave, and reads the deltas to infer enclave control flow
    and memory behaviour. *)

type event =
  | L1d_access
  | L1d_miss
  | Dtlb_miss
  | Branch
  | Branch_mispredict
  | Store_to_load_forward
  | Exception_event
  | Ptw_walk_event

val all_events : event list
val to_string : event -> string

(** [counter_index e] is the [mhpmcounter] index tracking [e]
    (3 upward). *)
val counter_index : event -> int

(** [bump csr e] increments the counter for [e]. *)
val bump : Csr.t -> event -> unit

(** [read csr e] is the current count of [e]. *)
val read : Csr.t -> event -> int64

(** [snapshot csr] renders all modelled counters (including cycle and
    instret) as log entries, slot = counter index. *)
val snapshot : Csr.t -> Log.entry list
