open Import

type event =
  | L1d_access
  | L1d_miss
  | Dtlb_miss
  | Branch
  | Branch_mispredict
  | Store_to_load_forward
  | Exception_event
  | Ptw_walk_event

let all_events =
  [
    L1d_access;
    L1d_miss;
    Dtlb_miss;
    Branch;
    Branch_mispredict;
    Store_to_load_forward;
    Exception_event;
    Ptw_walk_event;
  ]

let to_string = function
  | L1d_access -> "l1d-access"
  | L1d_miss -> "l1d-miss"
  | Dtlb_miss -> "dtlb-miss"
  | Branch -> "branch"
  | Branch_mispredict -> "branch-mispredict"
  | Store_to_load_forward -> "store-to-load-forward"
  | Exception_event -> "exception"
  | Ptw_walk_event -> "ptw-walk"

(* mhpmcounter3 is the first event counter; cycle=0 and instret=2 are
   handled directly by the machine. *)
let counter_index = function
  | L1d_access -> 3
  | L1d_miss -> 4
  | Dtlb_miss -> 5
  | Branch -> 6
  | Branch_mispredict -> 7
  | Store_to_load_forward -> 8
  | Exception_event -> 9
  | Ptw_walk_event -> 10

let bump csr e = Csr.bump_counter csr (counter_index e) ~by:1L
let read csr e = Csr.raw_read csr (Csr.Mhpmcounter (counter_index e))

let snapshot csr =
  let counter n =
    let id =
      match n with 0 -> Csr.Mcycle | 2 -> Csr.Minstret | n -> Csr.Mhpmcounter n
    in
    Log.entry ~slot:n ~note:(Csr.name id) (Csr.raw_read csr id)
  in
  List.map counter Csr.modelled_counters
