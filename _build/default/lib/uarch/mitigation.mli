(** Countermeasure knobs (Table 4 of the paper).

    Each constructor corresponds to one mitigation column.  Mitigations
    are attached to a core configuration; the flush-style ones run at
    every context switch across an isolation boundary, while
    [Clear_illegal_data_returns] changes the fault path of the load/store
    unit and the page-table walker. *)

type t =
  | Flush_l1d
  | Flush_store_buffer
  | Clear_illegal_data_returns
      (** Zero the data returned by any access that fails its permission
          check, and suppress the associated fill. *)
  | Flush_lfb
  | Flush_bpu_hpc  (** Flush (or equivalently tag) branch predictors and
                       reset performance counters. *)
  | Flush_everything  (** All flushes combined. *)
  | Tag_bpu_hpc
      (** Extension (paper §8): tag branch-predictor entries with the
          installing context and bank the performance counters per
          domain, instead of flushing.  Mitigates M1/M2 without the
          flush cost. *)

(** The six mitigations of the paper's Table 4. *)
val all : t list

(** Countermeasures the paper proposes but does not evaluate; we
    implement and evaluate them as extensions. *)
val extensions : t list
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [expands m] is the list of primitive flushes implied by [m]
    ([Flush_everything] implies every flush, but not
    [Clear_illegal_data_returns], which is a datapath change rather than
    a flush). *)
val expands : t -> t list

(** [active mitigations m] is true when [m] or a mitigation implying it
    is in [mitigations]. *)
val active : t list -> t -> bool
