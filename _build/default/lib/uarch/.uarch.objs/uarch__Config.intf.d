lib/uarch/config.mli: Format Mitigation
