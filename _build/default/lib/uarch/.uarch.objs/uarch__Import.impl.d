lib/uarch/import.ml: Riscv Simlog
