lib/uarch/lfb.ml: Array Import Int64 List Log Memory Word
