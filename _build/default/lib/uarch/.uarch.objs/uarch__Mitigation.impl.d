lib/uarch/mitigation.ml: Format List
