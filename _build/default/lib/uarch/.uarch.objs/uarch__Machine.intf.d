lib/uarch/machine.mli: Btb Config Csr Exec_context Import Log Memory Pmp Priv Program Riscv Tlb Word
