lib/uarch/cache.ml: Array Import Int64 List Log Memory Option Word
