lib/uarch/mitigation.mli: Format
