lib/uarch/btb.mli: Exec_context Import Log Word
