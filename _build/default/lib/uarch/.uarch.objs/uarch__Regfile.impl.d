lib/uarch/regfile.ml: Array Exec_context Import Int64 List Log Printf Word
