lib/uarch/store_buffer.mli: Import Log Word
