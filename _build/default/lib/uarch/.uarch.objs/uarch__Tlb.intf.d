lib/uarch/tlb.mli: Import Log Page_table Word
