lib/uarch/tlb.ml: Array Import Int64 List Log Page_table Word
