lib/uarch/store_buffer.ml: Import Int64 List Log Word
