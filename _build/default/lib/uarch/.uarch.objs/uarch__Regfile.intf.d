lib/uarch/regfile.mli: Exec_context Import Log Word
