lib/uarch/hpc.ml: Csr Import List Log
