lib/uarch/config.ml: Format Mitigation
