lib/uarch/hpc.mli: Csr Import Log
