lib/uarch/lfb.mli: Import Log Word
