lib/uarch/cache.mli: Import Log Word
