open Import

(** Line-fill buffer (BOOM) / miss queue (XiangShan).

    The LFB stages 64-byte refills between the L2 and the L1D.  It is the
    structure behind leakage cases D1–D3: prefetcher and page-table-walker
    fills land here without permission checks, and — on BOOM — completed
    entries retain their data until the slot is reallocated, so enclave
    lines linger across context switches.

    [retains_stale] selects between the two behaviours: when true
    (BOOM-like), {!complete} only clears the valid bit and the data stays
    visible; when false (XiangShan-like), completion zeroes the slot. *)

type t

val create : entries:int -> retains_stale:bool -> t

(** [fill t ~addr ~data] allocates a slot (round-robin over the oldest)
    and stores the incoming line.  Returns the slot index. *)
val fill : t -> addr:Word.t -> data:Word.t array -> int

(** [complete t ~slot] marks the refill finished and applies the stale
    retention policy. *)
val complete : t -> slot:int -> unit

(** [flush t] clears every slot including stale data. *)
val flush : t -> unit

(** [occupied t] counts in-flight (valid) entries. *)
val occupied : t -> int

(** [holds_value t v] is true when any slot — including stale ones —
    contains word [v]. *)
val holds_value : t -> Word.t -> bool

(** [snapshot t] renders every slot that holds data (valid or stale) as
    log entries. *)
val snapshot : t -> Log.entry list

(** [entries_of_fill ~slot ~addr ~data] are the log entries for a fill
    event, one per word. *)
val entries_of_fill : slot:int -> addr:Word.t -> data:Word.t array -> Log.entry list
