type t =
  | Flush_l1d
  | Flush_store_buffer
  | Clear_illegal_data_returns
  | Flush_lfb
  | Flush_bpu_hpc
  | Flush_everything
  | Tag_bpu_hpc

let all =
  [
    Flush_l1d;
    Flush_store_buffer;
    Clear_illegal_data_returns;
    Flush_lfb;
    Flush_bpu_hpc;
    Flush_everything;
  ]

let extensions = [ Tag_bpu_hpc ]

let equal (a : t) b = a = b

let to_string = function
  | Flush_l1d -> "flush-l1d"
  | Flush_store_buffer -> "flush-store-buffer"
  | Clear_illegal_data_returns -> "clear-illegal-data-returns"
  | Flush_lfb -> "flush-lfb"
  | Flush_bpu_hpc -> "flush-bpu-hpc"
  | Flush_everything -> "flush-everything"
  | Tag_bpu_hpc -> "tag-bpu-hpc"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let expands = function
  | Flush_everything ->
    [ Flush_everything; Flush_l1d; Flush_store_buffer; Flush_lfb; Flush_bpu_hpc ]
  | m -> [ m ]

let active mitigations m =
  List.exists (fun set -> List.exists (equal m) (expands set)) mitigations
