(* Choosing countermeasures: measured closure vs measured cost.

   The paper's section 8 lists possible mitigations per leakage case and
   notes that deployments can pick a subset matching their threat model.
   This example makes the trade-off concrete on both cores: every
   combination of up to two knobs is evaluated against the campaign
   (which cases does it close?) and against the reference workload
   (what does it cost?).

   Two structural conclusions fall out, matching the paper:
   - on BOOM, no combination closes D1: the unchecked prefetcher path
     cannot be flushed away and needs a hardware fix;
   - the section-8 tagging proposal (tag-bpu-hpc) plus
     clear-illegal-data-returns dominates flush-everything on XiangShan:
     full closure at roughly zero overhead instead of ~+30%.

   Run with: dune exec examples/mitigation_tuning.exe *)

let () =
  List.iter
    (fun (config : Uarch.Config.t) ->
      let result = Teesec.Recommend.evaluate ~max_size:2 config in
      Format.printf "%a@." Teesec.Recommend.pp_result result;
      let best = Teesec.Recommend.best result in
      Format.printf "  -> recommended: %s (residual: %s, overhead %+.1f%%)@.@."
        (if best.Teesec.Recommend.mitigations = [] then "(none)"
         else
           String.concat " + "
             (List.map Uarch.Mitigation.to_string best.Teesec.Recommend.mitigations))
        (if best.Teesec.Recommend.residual = [] then "none"
         else
           String.concat ","
             (List.map Teesec.Case.to_string best.Teesec.Recommend.residual))
        best.Teesec.Recommend.overhead_pct)
    [ Uarch.Config.boom; Uarch.Config.xiangshan ]
