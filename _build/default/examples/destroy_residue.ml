(* Case study D3 (paper Figure 4): LFB residue after enclave destroy.

   The host asks the security monitor to destroy a stopped enclave.  The
   monitor's memset stores miss in the L1D, so each line of the dying
   enclave is first fetched from the L2 through the line-fill buffer.
   On BOOM the LFB retains completed fills until the slot is reused, so
   enclave secrets are still sitting there when control returns to the
   host.  XiangShan's miss queue clears entries on deallocation.

   Run with: dune exec examples/destroy_residue.exe *)

let () =
  List.iter
    (fun (config : Uarch.Config.t) ->
      let trace = Teesec.Scenarios.destroy_residue config in
      Format.printf "%a@." Teesec.Scenarios.pp_trace trace;
      (* Show the artifact-style checker report for the same flow. *)
      let params = Teesec.Params.make () in
      let tc =
        Teesec.Assembler.assemble ~id:0 Teesec.Access_path.Imp_acc_destroy_memset
          ~params
      in
      let outcome = Teesec.Runner.run config tc in
      let findings =
        Teesec.Checker.check outcome.Teesec.Runner.log outcome.Teesec.Runner.tracker
      in
      let d3 =
        List.filter (fun f -> f.Teesec.Checker.case = Some Teesec.Case.D3) findings
      in
      if d3 = [] then Format.printf "No D3 finding on %s.@.@." config.Uarch.Config.name
      else List.iter (Teesec.Report.render_finding Format.std_formatter) d3)
    [ Uarch.Config.boom; Uarch.Config.xiangshan ]
