(* Running a compiled machine-code payload, the way the paper's artifact
   feeds RISC-V ELF binaries to the RTL simulators.

   The host attack from the quickstart is assembled to real RV64I machine
   code (the Li pseudo-instruction materialises into an addi/slli/ori
   chain, with branch targets relocated across the stretched layout),
   loaded into physical memory and executed by fetching through the
   instruction cache.  The checker verdict is identical to the symbolic
   path: the PMP check races the L1D hit and the secret reaches the
   physical register file (case D4).

   Run with: dune exec examples/binary_payload.exe *)

open Riscv

let () =
  let config = Uarch.Config.boom in
  let env = Teesec.Env.create config (Teesec.Params.make ~seed:0xDEADBEEFL ()) in

  (* Victim setup through the ordinary gadgets. *)
  Teesec.Gadget_library.create_enclave.Teesec.Gadget.emit env;
  Teesec.Gadget_library.fill_enc_mem.Teesec.Gadget.emit env;

  (* The attack, as source... *)
  let attack =
    Program.of_instrs ~base:Tee.Memory_layout.host_code_base
      [
        Instr.Li (Instr.a4, Teesec.Env.secret_addr env);
        Instr.ld Instr.a5 Instr.a4 0L;
        Instr.Alu (Instr.Xor, Instr.a6, Instr.a5, Instr.a5);
        Instr.Halt;
      ]
  in
  (* ...and as machine code. *)
  let words = Encode.assemble attack in
  Format.printf "Assembled host attack (%d instructions -> %d words):@."
    (Program.length attack) (Array.length words);
  Array.iteri
    (fun i w ->
      let pc = Int64.add Tee.Memory_layout.host_code_base (Int64.of_int (i * 4)) in
      Format.printf "  %Lx: %08lx    %a@." pc w Decode.pp_decoded (Decode.decode ~pc w))
    words;

  (* Execute the image: fetches go through the I-cache with PMP execute
     checks; the data-side behaviour is exactly the symbolic path's. *)
  let m = env.Teesec.Env.machine in
  (match Uarch.Machine.run_binary m ~base:Tee.Memory_layout.host_code_base words with
  | Ok stop ->
    Format.printf "@.Binary run stopped with: %s@." (Uarch.Machine.stop_reason_to_string stop)
  | Error msg -> failwith msg);
  Format.printf "Host code line now resident in the I-cache: %b@.@."
    (Uarch.Machine.l1i_contains m ~addr:Tee.Memory_layout.host_code_base);

  let findings =
    Teesec.Checker.check (Uarch.Machine.log m) env.Teesec.Env.tracker
  in
  List.iter
    (fun f ->
      if f.Teesec.Checker.case <> None then
        Teesec.Report.render_finding Format.std_formatter f)
    findings
