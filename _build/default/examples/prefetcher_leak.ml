(* Case study D1 (paper Figure 2): abusing the L1 next-line prefetcher.

   The host loads a boundary-straddling address in the last accessible
   line before a PMP-protected enclave region.  The load itself is legal,
   but the miss triggers BOOM's next-line prefetcher, which performs no
   permission check and pulls a full line of enclave data into the
   line-fill buffer.  XiangShan has no L1 prefetcher and is immune.

   Run with: dune exec examples/prefetcher_leak.exe *)

let run_on config =
  let trace = Teesec.Scenarios.prefetcher config in
  Format.printf "%a@." Teesec.Scenarios.pp_trace trace

let () =
  run_on Uarch.Config.boom;
  run_on Uarch.Config.xiangshan;

  (* The same flow by hand, showing the attacker's view: the host walks a
     window of addresses toward the boundary and watches which accesses
     drag enclave lines into the LFB. *)
  let config = Uarch.Config.boom in
  Format.printf "Host sweep toward the enclave boundary on %s:@." config.Uarch.Config.name;
  List.iter
    (fun lines_before ->
      let params = Teesec.Params.make ~offset:56 ~width:8 ~variant:(lines_before - 1) () in
      let tc = Teesec.Assembler.assemble ~id:0 Teesec.Access_path.Imp_acc_pref ~params in
      let outcome = Teesec.Runner.run config tc in
      let findings =
        Teesec.Checker.check outcome.Teesec.Runner.log outcome.Teesec.Runner.tracker
      in
      let d1 =
        List.exists (fun f -> f.Teesec.Checker.case = Some Teesec.Case.D1) findings
      in
      Format.printf "  load %d line(s) before the boundary -> prefetch %s@." lines_before
        (if d1 then "pulls ENCLAVE data into the LFB (D1)" else "stays in host memory (benign)"))
    [ 1; 2 ]
