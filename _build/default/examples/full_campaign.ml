(* The headline experiment: the full 585-test-case campaign on both
   cores, regenerating the paper's Table 3.

   Run with: dune exec examples/full_campaign.exe *)

let () =
  let results =
    List.map
      (fun config ->
        Format.printf "Running the full corpus on %s...@." config.Uarch.Config.name;
        let result = Teesec.Campaign.run_full config in
        Format.printf "%a@." Teesec.Campaign.pp_result result;
        result)
      [ Uarch.Config.boom; Uarch.Config.xiangshan ]
  in
  print_string (Teesec.Tables.table3 results);
  let distinct =
    List.sort_uniq Teesec.Case.compare
      (List.concat_map (fun r -> r.Teesec.Campaign.found) results)
  in
  Format.printf "@.Distinct vulnerabilities across both designs: %d (paper: 10)@."
    (List.length distinct)
