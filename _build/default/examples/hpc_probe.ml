(* Case study M1: profiling enclave behaviour through hardware
   performance counters.

   Neither core resets the HPCs on a context switch and Keystone offers
   no software cleansing, so the untrusted host can read the counters
   before and after an enclave runs and attribute the deltas to the
   enclave.  Here the host distinguishes a memory-heavy enclave from a
   branch-heavy one purely from counter deltas.

   Run with: dune exec examples/hpc_probe.exe *)

open Riscv

let memory_heavy_program ~base ~data =
  let loads =
    List.concat_map
      (fun i ->
        [
          Instr.Li (Instr.t1, Int64.add data (Int64.of_int (i * 64)));
          Instr.ld Instr.t0 Instr.t1 0L;
        ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Program.of_instrs ~base (loads @ [ Instr.Halt ])

let branch_heavy_program ~base =
  let branch i =
    [
      Program.Instr (Instr.Branch (Instr.Eq, 0, 0, Printf.sprintf "l%d" i));
      Program.Instr Instr.Nop;
      Program.Label (Printf.sprintf "l%d" i);
    ]
  in
  Program.assemble ~base
    (List.concat_map branch [ 0; 1; 2; 3; 4; 5; 6; 7 ] @ [ Program.Instr Instr.Halt ])

let counters = Uarch.Hpc.all_events

let read_counters machine =
  List.map (fun e -> (e, Uarch.Hpc.read (Uarch.Machine.csr machine) e)) counters

let profile config ~label ~program_of =
  let machine = Uarch.Machine.create config in
  let sm = Tee.Security_monitor.install machine in
  let eid =
    match Tee.Security_monitor.create_enclave sm () with
    | Ok eid -> eid
    | Error e -> failwith (Tee.Security_monitor.error_to_string e)
  in
  Tee.Security_monitor.register_enclave_program sm eid
    (program_of ~base:(Tee.Memory_layout.enclave_code_base eid)
       ~data:(Tee.Memory_layout.enclave_base eid));
  (* The host primes a baseline, runs the enclave, then reads again. *)
  let before = read_counters machine in
  ignore (Tee.Security_monitor.run_enclave sm eid);
  let after = read_counters machine in
  Format.printf "  %s enclave:" label;
  List.iter2
    (fun (e, b) (_, a) ->
      let delta = Int64.sub a b in
      if not (Int64.equal delta 0L) then
        Format.printf " %s:+%Ld" (Uarch.Hpc.to_string e) delta)
    before after;
  Format.printf "@."

let () =
  List.iter
    (fun (config : Uarch.Config.t) ->
      Format.printf "Host-visible counter deltas on %s:@." config.Uarch.Config.name;
      profile config ~label:"memory-heavy" ~program_of:(fun ~base ~data ->
          memory_heavy_program ~base ~data);
      profile config ~label:"branch-heavy" ~program_of:(fun ~base ~data:_ ->
          branch_heavy_program ~base);
      Format.printf
        "  -> the host distinguishes the two workloads without any access to \
         enclave memory (M1).@.@.")
    [ Uarch.Config.boom; Uarch.Config.xiangshan ]
