examples/cache_prime_probe.mli:
