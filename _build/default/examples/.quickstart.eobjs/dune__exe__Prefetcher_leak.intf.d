examples/prefetcher_leak.mli:
