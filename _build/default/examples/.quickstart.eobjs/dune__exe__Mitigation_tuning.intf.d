examples/mitigation_tuning.mli:
