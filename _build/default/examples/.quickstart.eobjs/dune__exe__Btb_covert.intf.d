examples/btb_covert.mli:
