examples/btb_covert.ml: Csr Format Instr Int64 List Program Riscv Tee Uarch
