examples/binary_payload.ml: Array Decode Encode Format Instr Int64 List Program Riscv Tee Teesec Uarch
