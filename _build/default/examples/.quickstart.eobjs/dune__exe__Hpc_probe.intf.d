examples/hpc_probe.mli:
