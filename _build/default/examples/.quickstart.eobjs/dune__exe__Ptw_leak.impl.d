examples/ptw_leak.ml: Format List Teesec Uarch
