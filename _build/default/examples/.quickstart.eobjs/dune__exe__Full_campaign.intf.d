examples/full_campaign.mli:
