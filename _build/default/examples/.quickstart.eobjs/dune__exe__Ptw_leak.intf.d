examples/ptw_leak.mli:
