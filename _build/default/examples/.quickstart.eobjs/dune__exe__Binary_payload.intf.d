examples/binary_payload.mli:
