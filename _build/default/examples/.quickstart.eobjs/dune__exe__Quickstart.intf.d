examples/quickstart.mli:
