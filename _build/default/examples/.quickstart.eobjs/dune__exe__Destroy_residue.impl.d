examples/destroy_residue.ml: Format List Teesec Uarch
