examples/cache_prime_probe.ml: Format Instr Int64 List Program Riscv Tee Teesec Uarch
