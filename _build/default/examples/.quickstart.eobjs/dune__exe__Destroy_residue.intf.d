examples/destroy_residue.mli:
