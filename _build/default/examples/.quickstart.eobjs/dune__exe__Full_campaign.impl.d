examples/full_campaign.ml: Format List Teesec Uarch
