examples/mitigation_tuning.ml: Format List String Teesec Uarch
