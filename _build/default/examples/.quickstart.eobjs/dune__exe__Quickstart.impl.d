examples/quickstart.ml: Format List String Teesec Uarch
