examples/prefetcher_leak.ml: Format List Teesec Uarch
