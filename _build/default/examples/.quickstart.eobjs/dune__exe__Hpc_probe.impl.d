examples/hpc_probe.ml: Format Instr Int64 List Printf Program Riscv Tee Uarch
