(* Case study D2 (paper Figure 3): leaking through page-table walks.

   The malicious OS points the host root page table (satp) into enclave
   memory and issues a load whose translation misses the TLB.  The
   hardware page-table walker's implicit read of the "root PTE" targets
   enclave data:

   - BOOM sends the request over the ordinary L1D channel and checks PMP
     only afterwards — the LFB receives 64 bytes of enclave secrets even
     though an access fault is eventually raised.
   - XiangShan checks PMP before creating the PTW refill request; no
     request is issued at all, so it is not vulnerable.

   Run with: dune exec examples/ptw_leak.exe *)

let () =
  List.iter
    (fun config ->
      let trace = Teesec.Scenarios.ptw config in
      Format.printf "%a@." Teesec.Scenarios.pp_trace trace)
    [ Uarch.Config.boom; Uarch.Config.xiangshan ];

  (* Sweep all eight root-PTE slots: each vpn2 value makes the walker
     read a different word of the hijacked "root table" line, so the
     attacker can dump the whole enclave line through the LFB. *)
  let config = Uarch.Config.boom in
  Format.printf "Dumping an enclave line word by word on %s:@." config.Uarch.Config.name;
  List.iter
    (fun vpn2 ->
      let params = Teesec.Params.make ~offset:(vpn2 * 8) ~width:8 () in
      let tc = Teesec.Assembler.assemble ~id:vpn2 Teesec.Access_path.Imp_acc_ptw_root ~params in
      let outcome = Teesec.Runner.run config tc in
      let findings =
        Teesec.Checker.check outcome.Teesec.Runner.log outcome.Teesec.Runner.tracker
      in
      let leaked =
        List.sort_uniq compare
          (List.filter_map
             (fun f ->
               match (f.Teesec.Checker.case, f.Teesec.Checker.secret) with
               | Some Teesec.Case.D2, Some s -> Some s.Teesec.Secret.value
               | _ -> None)
             findings)
      in
      Format.printf "  vpn2=%d: %d distinct secret word(s) of the line in the LFB@." vpn2
        (List.length leaked))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
