(* Quickstart: the artifact's experiment workflow for leakage case D4.

   Mirrors §A.7 of the paper's artifact appendix: construct the
   Exp_Acc_Enc_L1 test case with a chosen secret seed, run it through the
   instrumented BOOM model, and let the checker locate where the enclave
   secret was illegally accessed by the host.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick the design under test and the test parameters (the CLI
     equivalent is: teesec_cli testcase Exp_Acc_Enc_L1 --seed 0xdeadbeef). *)
  let config = Uarch.Config.boom in
  let params = Teesec.Params.make ~offset:0 ~width:8 ~seed:0xDEADBEEFL () in

  (* 2. The gadget assembler builds the complete test sequence: create an
     enclave, seed address-hash secrets, drain them into the L1D, then
     perform the illegal host access. *)
  let testcase = Teesec.Assembler.assemble ~id:0 Teesec.Access_path.Exp_acc_enc_l1 ~params in
  Format.printf "Assembled test sequence: %a@.@." Teesec.Testcase.pp testcase;

  (* 3. Run it on a fresh instrumented machine.  Every microarchitectural
     structure change is recorded in the simulation log. *)
  let outcome = Teesec.Runner.run config testcase in
  Format.printf "Simulation finished: %d cycles, %d log records.@.@."
    outcome.Teesec.Runner.cycles outcome.Teesec.Runner.log_records;

  (* 4. The checker searches the log for secrets observed outside trusted
     enclave execution and classifies the violations. *)
  let findings = Teesec.Checker.check outcome.Teesec.Runner.log outcome.Teesec.Runner.tracker in
  Teesec.Report.render Format.std_formatter outcome findings;

  (* 5. The same test on XiangShan also leaks (the L1-hit response races
     the PMP check on both cores). *)
  let outcome_xs = Teesec.Runner.run Uarch.Config.xiangshan testcase in
  let findings_xs =
    Teesec.Checker.check outcome_xs.Teesec.Runner.log outcome_xs.Teesec.Runner.tracker
  in
  Format.printf "XiangShan finds: %s@."
    (String.concat ", "
       (List.map Teesec.Case.to_string (Teesec.Checker.distinct_cases findings_xs)))
