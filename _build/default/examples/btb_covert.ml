(* Case study M2 (paper Figure 7): recovering an enclave secret byte
   through uBTB prime-and-probe.

   Host and enclave branch PCs that differ only above the uBTB's index
   and partial-tag bits map to the same predictor entry.  The enclave
   executes a conditional branch whose direction depends on one secret
   bit; the host primes the shared entry before entry and probes it
   afterwards, timing its own branch to observe whether the prediction
   was flipped.  Eight rounds recover a full byte.

   Run with: dune exec examples/btb_covert.exe *)

open Riscv

(* A branch at instruction index 2, so the host and enclave versions sit
   at PCs with identical low bits.  [measure] brackets the branch with
   cycle-counter reads (the probe). *)
let branch_program ~base ~taken ~measure =
  let prefix =
    if measure then [ Program.Instr (Instr.Csrr (Instr.a2, Csr.Cycle)) ]
    else [ Program.Instr Instr.Nop ]
  in
  let branch =
    if taken then Instr.Branch (Instr.Eq, 0, 0, "target")
    else Instr.Branch (Instr.Ne, 0, 0, "target")
  in
  let suffix =
    if measure then
      [
        Program.Instr (Instr.Csrr (Instr.a3, Csr.Cycle));
        Program.Instr (Instr.Alu (Instr.Sub, Instr.a4, Instr.a3, Instr.a2));
      ]
    else []
  in
  Program.assemble ~base
    (prefix
    @ [
        Program.Instr Instr.Nop;
        Program.Instr branch;
        Program.Instr Instr.Nop;
        Program.Label "target";
      ]
    @ suffix
    @ [ Program.Instr Instr.Halt ])

let recover_byte config ~secret_byte =
  let machine = Uarch.Machine.create config in
  let sm = Tee.Security_monitor.install machine in
  let eid =
    match Tee.Security_monitor.create_enclave sm () with
    | Ok eid -> eid
    | Error e -> failwith (Tee.Security_monitor.error_to_string e)
  in
  let host_base = Tee.Memory_layout.host_code_base in
  let enclave_base = Tee.Memory_layout.enclave_code_base eid in
  let recovered = ref 0 in
  for bit = 7 downto 0 do
    let secret_bit = (secret_byte lsr bit) land 1 = 1 in
    (* Prime: the host trains the shared entry with a taken branch. *)
    ignore
      (Tee.Security_monitor.run_host sm
         (branch_program ~base:host_base ~taken:true ~measure:false));
    (* Victim: the enclave branch direction encodes the secret bit. *)
    Tee.Security_monitor.register_enclave_program sm eid
      (branch_program ~base:enclave_base ~taken:secret_bit ~measure:false);
    ignore
      (if bit = 7 then Tee.Security_monitor.run_enclave sm eid
       else Tee.Security_monitor.resume_enclave sm eid);
    (* Probe: the host re-executes its (not-taken) branch and times it.
       A misprediction penalty means the entry still says "taken". *)
    ignore
      (Tee.Security_monitor.run_host sm
         (branch_program ~base:host_base ~taken:false ~measure:true));
    let delta = Int64.to_int (Uarch.Machine.get_reg machine Instr.a4) in
    let inferred = delta > 10 in
    Format.printf "  bit %d: probe took %2d cycles -> enclave branch %s@." bit delta
      (if inferred then "TAKEN" else "not taken");
    if inferred then recovered := !recovered lor (1 lsl bit)
  done;
  !recovered

let () =
  List.iter
    (fun (config : Uarch.Config.t) ->
      let secret_byte = 0b1011_0010 in
      Format.printf "uBTB prime-and-probe on %s (secret byte 0x%02x):@."
        config.Uarch.Config.name secret_byte;
      let recovered = recover_byte config ~secret_byte in
      Format.printf "  recovered: 0x%02x %s@.@." recovered
        (if recovered = secret_byte then "(exact match - enclave control flow leaked)"
         else "(mismatch)"))
    [ Uarch.Config.boom; Uarch.Config.xiangshan ]
