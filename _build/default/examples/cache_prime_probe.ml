(* Classic Prime+Probe against a secret-dependent enclave access
   (paper §2.2 background; threat-model class "access-driven side
   channels through shared microarchitectural state").

   The enclave reads one of two lines depending on a secret bit.  The
   host cannot read enclave memory — but the L1D is shared and nothing
   flushes it at the boundary, so the host primes the two cache sets
   with its own eviction sets, lets the enclave run, and probes: the set
   whose probe got slower is the one the enclave's access evicted a
   primed line from.  Eight rounds recover a byte without the checker's
   help — pure timing.

   Run with: dune exec examples/cache_prime_probe.exe *)

open Riscv

let recover_byte (config : Uarch.Config.t) ~secret_byte =
  let machine = Uarch.Machine.create config in
  let sm = Tee.Security_monitor.install machine in
  let eid =
    match Tee.Security_monitor.create_enclave sm () with
    | Ok eid -> eid
    | Error e -> failwith (Tee.Security_monitor.error_to_string e)
  in
  let base = Tee.Memory_layout.enclave_base eid in
  (* Two victim lines far enough apart to live in different sets. *)
  let line0 = Int64.add base 0x8000L in
  let line1 = Int64.add base 0x8400L in
  assert (not (Teesec.Eviction_set.same_set config ~addr1:line0 ~addr2:line1));
  let ways = config.Uarch.Config.l1_ways in
  let evset n =
    Teesec.Eviction_set.build config ~target:n
      ~from:Tee.Memory_layout.host_data_base ~count:ways
  in
  let ev0 = evset line0 and ev1 = evset line1 in
  let host_run instrs =
    ignore
      (Tee.Security_monitor.run_host sm
         (Program.of_instrs ~base:Tee.Memory_layout.host_code_base (instrs @ [ Instr.Halt ])))
  in
  let probe addrs =
    host_run (Teesec.Eviction_set.probe_instrs addrs);
    Int64.to_int (Uarch.Machine.get_reg machine Instr.a6)
  in
  let recovered = ref 0 in
  for bit = 7 downto 0 do
    let secret_line = if (secret_byte lsr bit) land 1 = 1 then line1 else line0 in
    (* Prime both sets. *)
    host_run (Teesec.Eviction_set.prime_instrs (ev0 @ ev1));
    (* Victim: one secret-dependent access. *)
    Tee.Security_monitor.register_enclave_program sm eid
      (Program.of_instrs ~base:(Tee.Memory_layout.enclave_code_base eid)
         [ Instr.Li (Instr.t1, secret_line); Instr.ld Instr.t0 Instr.t1 0L; Instr.Halt ]);
    ignore
      (if bit = 7 then Tee.Security_monitor.run_enclave sm eid
       else Tee.Security_monitor.resume_enclave sm eid);
    (* Probe both sets and compare. *)
    let t0 = probe ev0 in
    let t1 = probe ev1 in
    let inferred = t1 > t0 in
    Format.printf "  bit %d: probe set0=%3d set1=%3d cycles -> bit=%d@." bit t0 t1
      (if inferred then 1 else 0);
    if inferred then recovered := !recovered lor (1 lsl bit)
  done;
  !recovered

let () =
  List.iter
    (fun (config : Uarch.Config.t) ->
      let secret_byte = 0b0110_1001 in
      Format.printf "L1D Prime+Probe on %s (secret byte 0x%02x):@."
        config.Uarch.Config.name secret_byte;
      let recovered = recover_byte config ~secret_byte in
      Format.printf "  recovered: 0x%02x %s@.@." recovered
        (if recovered = secret_byte then "(exact match - secret-dependent access leaked)"
         else "(mismatch)"))
    [ Uarch.Config.boom; Uarch.Config.xiangshan ]
